//===- tests/DeltaSlackTests.cpp - Delta-tolerant serving tests ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The delta-slack serving path: a child dataset derived from a parent by
// pure row removal may be answered from the parent's stored Robust
// certificate at radius n + RowsRemoved (the removed rows are spent
// against the parent's wider budget), with an exact re-verification
// queued in the background. Any row *addition* voids the argument — a
// subset of the child need not be a subset of the parent — so the path
// must refuse to serve. Both directions are pinned here, along with the
// CertServer end-to-end loop that turns a slack-served answer into a
// fresh certificate under the child's own fingerprint.
//
//===----------------------------------------------------------------------===//

#include "serving/CertServer.h"
#include "serving/CertCache.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// Two well-separated classes (8 rows at {1,2,3,4}, 8 at {11,12,13,14}):
/// a depth-1 disjuncts verifier proves X=2.5 Robust up to n=3, and the
/// margin survives removing a few rows — the shape the slack path needs
/// (parent Robust at n+k, child still Robust at n).
Dataset separatedDataset() {
  Dataset D(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  for (int I = 0; I < 8; ++I)
    D.addRow({static_cast<float>(1 + I % 4)}, 0);
  for (int I = 0; I < 8; ++I)
    D.addRow({static_cast<float>(11 + I % 4)}, 1);
  return D;
}

VerifierConfig slackConfig() {
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 30.0;
  return Config;
}

/// Records every re-verification the slack path requests.
class CapturingScheduler final : public ReverifyScheduler {
public:
  struct Call {
    std::vector<float> X;
    uint32_t PoisoningBudget = 0;
  };

  void scheduleReverify(const float *X, unsigned NumFeatures,
                        uint32_t PoisoningBudget) override {
    Calls.push_back({{X, X + NumFeatures}, PoisoningBudget});
  }

  std::vector<Call> Calls;
};

} // namespace

TEST(DeltaSlackTest, RemovalDeltaServesParentProofAndQueuesReverify) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = slackConfig();
  Config.Cache = &Cache;
  const float X[] = {2.5f};

  // The parent proves Robust at radius 2 and stores the certificate.
  Certificate ParentCert = PV.verify(X, 2, Config);
  ASSERT_EQ(ParentCert.Kind, VerdictKind::Robust);
  ASSERT_EQ(ParentCert.CertifiedRadius, 2u);

  // The child loses one row; its own fingerprint has no entries.
  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.removeRow(0);
  Verifier CV(Child);
  ASSERT_NE(CV.fingerprint(), PV.fingerprint());
  CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

  // n=1 with one removal consults the parent at slack budget 2: served
  // immediately from the parent's proof, re-verification requested.
  CapturingScheduler Scheduler;
  Config.Reverify = &Scheduler;
  Certificate Served = CV.verify(X, 1, Config);
  EXPECT_EQ(Served.Kind, VerdictKind::Robust);
  EXPECT_EQ(Served.PoisoningBudget, 1u);
  EXPECT_EQ(Served.CertifiedRadius, 2u); // Still names the parent proof.
  ASSERT_EQ(Scheduler.Calls.size(), 1u);
  EXPECT_EQ(Scheduler.Calls[0].X, std::vector<float>({2.5f}));
  EXPECT_EQ(Scheduler.Calls[0].PoisoningBudget, 1u);

  // The soundness claim itself: a fresh cache-less child verification
  // agrees the served verdict was right.
  VerifierConfig Fresh = slackConfig();
  Certificate Exact = CV.verify(X, 1, Fresh);
  EXPECT_EQ(Exact.Kind, VerdictKind::Robust);

  // A slack-served answer is *not* written under the child fingerprint
  // (that would block the background exact certificate): looking it up
  // directly still misses.
  Certificate Out;
  EXPECT_FALSE(Cache.lookup(CV.fingerprint(), X, 1, 1, Config, Out));
}

TEST(DeltaSlackTest, MultiRowRemovalSumsTheSlack) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = slackConfig();
  Config.Cache = &Cache;
  const float X[] = {2.5f};

  ASSERT_EQ(PV.verify(X, 3, Config).Kind, VerdictKind::Robust);

  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.removeRow(0);
  Child.removeRow(0);
  Verifier CV(Child);
  CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

  // n=1 with two removals needs the parent Robust at 1+2=3 — which it
  // is. n=2 would need radius 4, which is not stored: the slack path
  // must miss and verify fresh (CertifiedRadius == the queried budget).
  Certificate Served = CV.verify(X, 1, Config);
  EXPECT_EQ(Served.Kind, VerdictKind::Robust);
  EXPECT_EQ(Served.CertifiedRadius, 3u);

  Certificate FreshRun = CV.verify(X, 2, Config);
  EXPECT_EQ(FreshRun.CertifiedRadius, 2u);
}

TEST(DeltaSlackTest, AdditionDeltaNeverServes) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = slackConfig();
  Config.Cache = &Cache;
  const float X[] = {2.5f};

  ASSERT_EQ(PV.verify(X, 3, Config).Kind, VerdictKind::Robust);

  // One row added: the child is no longer a subset of the parent, so
  // the parent's proof transfers nothing — the child must verify fresh
  // and no re-verification may be scheduled.
  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.addRow({12.0f}, 1);
  Verifier CV(Child);
  CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

  CapturingScheduler Scheduler;
  Config.Reverify = &Scheduler;
  Certificate Cert = CV.verify(X, 1, Config);
  EXPECT_EQ(Cert.CertifiedRadius, 1u); // Fresh, not the parent's radius.
  EXPECT_TRUE(Scheduler.Calls.empty());
}

TEST(DeltaSlackTest, SetLabelCountsAsAdditionAndNeverServes) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = slackConfig();
  Config.Cache = &Cache;
  const float X[] = {2.5f};

  ASSERT_EQ(PV.verify(X, 3, Config).Kind, VerdictKind::Robust);

  // A label flip is one removal plus one addition — the addition alone
  // voids the subset argument.
  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.setLabel(15, 0);
  Verifier CV(Child);
  DatasetLineage L = lineageSinceMark(PV.fingerprint(), Child);
  EXPECT_EQ(L.RowsAdded, 1u);
  EXPECT_EQ(L.RowsRemoved, 1u);
  CV.setLineage(L);

  CapturingScheduler Scheduler;
  Config.Reverify = &Scheduler;
  Certificate Cert = CV.verify(X, 1, Config);
  EXPECT_EQ(Cert.CertifiedRadius, 1u);
  EXPECT_TRUE(Scheduler.Calls.empty());
}

TEST(DeltaSlackTest, DeltaSlackKnobDisablesTheConsult) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = slackConfig();
  Config.Cache = &Cache;
  const float X[] = {2.5f};

  ASSERT_EQ(PV.verify(X, 2, Config).Kind, VerdictKind::Robust);

  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.removeRow(0);
  Verifier CV(Child);
  CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

  // Same setup as the serving test, slack disarmed: the child verifies
  // fresh (the `--delta-slack 0` A/B path).
  CapturingScheduler Scheduler;
  Config.Reverify = &Scheduler;
  Config.DeltaSlack = false;
  Certificate Cert = CV.verify(X, 1, Config);
  EXPECT_EQ(Cert.CertifiedRadius, 1u);
  EXPECT_TRUE(Scheduler.Calls.empty());
}

TEST(DeltaSlackTest, ParentUnknownIsNeverSlackServed) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  VerifierConfig Config = slackConfig();
  Config.Cache = &Cache;
  const float X[] = {2.5f};

  // The parent fails at radius 5 (Unknown). A child with one row
  // removed querying n=4 maps to the parent's budget 5 — but Unknown
  // does not transfer across datasets (the child's margin differs),
  // so the slack path must verify fresh.
  ASSERT_EQ(PV.verify(X, 5, Config).Kind, VerdictKind::Unknown);

  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.removeRow(0);
  Verifier CV(Child);
  CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

  CapturingScheduler Scheduler;
  Config.Reverify = &Scheduler;
  Certificate Cert = CV.verify(X, 4, Config);
  EXPECT_EQ(Cert.CertifiedRadius, 4u);
  EXPECT_TRUE(Scheduler.Calls.empty());
}

TEST(DeltaSlackTest, FlipQueryIsNeverAnsweredFromParentCertificate) {
  // The threat gate: slack's n + k containment argument is about rows
  // *removed* from the parent — a relabeling of the child set is not a
  // relabeling of the parent, so a flip query must never be answered
  // from a parent certificate, whatever that certificate's own model.
  // Plant unmistakable Robust certificates under the parent fingerprint
  // at exactly the radius the slack consult would probe (n=1 plus one
  // removal = 2), under both the removal and the flip config, and check
  // the child's flip query walks past both.
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Cache(/*MaxBytes=*/0);
  const float X[] = {2.5f};

  VerifierConfig RemovalCfg = slackConfig();
  VerifierConfig FlipCfg = slackConfig();
  FlipCfg.Threat = ThreatModelKind::LabelFlip;

  Certificate Planted;
  Planted.Kind = VerdictKind::Robust;
  Planted.PoisoningBudget = 2;
  Planted.CertifiedRadius = 2;
  Planted.Depth = RemovalCfg.Depth;
  Planted.Domain = RemovalCfg.Domain;
  Planted.ConcretePrediction = 0;
  Planted.DominatingClass = 0;
  Planted.NumTerminals = 999999; // The marker: no fresh run looks like this.
  Planted.Threat = ThreatModelKind::Removal;
  Cache.store(PV.fingerprint(), X, 1, 2, RemovalCfg, Planted);
  Planted.Threat = ThreatModelKind::LabelFlip;
  Cache.store(PV.fingerprint(), X, 1, 2, FlipCfg, Planted);

  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.removeRow(0);
  Verifier CV(Child);
  CV.setLineage(lineageSinceMark(PV.fingerprint(), Child));

  // Control first: a removal query at n=1 is slack-served the planted
  // parent proof (the gate is about the threat, not the plumbing).
  VerifierConfig CachedRemoval = RemovalCfg;
  CachedRemoval.Cache = &Cache;
  Certificate ServedRemoval = CV.verify(X, 1, CachedRemoval);
  EXPECT_EQ(ServedRemoval.NumTerminals, 999999u);
  EXPECT_EQ(ServedRemoval.CertifiedRadius, 2u);

  // The property: the same query under the flip model verifies fresh —
  // not the marker, not the parent radius — and schedules no reverify.
  CapturingScheduler Scheduler;
  VerifierConfig CachedFlip = FlipCfg;
  CachedFlip.Cache = &Cache;
  CachedFlip.Reverify = &Scheduler;
  Certificate ServedFlip = CV.verify(X, 1, CachedFlip);
  EXPECT_NE(ServedFlip.NumTerminals, 999999u);
  EXPECT_EQ(ServedFlip.CertifiedRadius, 1u);
  EXPECT_EQ(ServedFlip.Threat, ThreatModelKind::LabelFlip);
  EXPECT_TRUE(Scheduler.Calls.empty());
}

//===----------------------------------------------------------------------===//
// CertServer end to end: slack serve, then background exact write-through
//===----------------------------------------------------------------------===//

TEST(DeltaSlackTest, ServerReverifiesSlackServedQueryInBackground) {
  // The parent's certificates live in a store shared with the child's
  // server (the production shape: one long-lived backing store, the
  // dataset evolving under it).
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Backing(/*MaxBytes=*/0);
  VerifierConfig Seed = slackConfig();
  Seed.Cache = &Backing;
  const float X[] = {2.5f};
  ASSERT_EQ(PV.verify(X, 2, Seed).Kind, VerdictKind::Robust);

  Dataset Child = separatedDataset();
  Child.markLineage();
  Child.removeRow(0);

  CertServerConfig SC;
  SC.Query = slackConfig();
  SC.Jobs = 2;
  SC.Store = &Backing; // One tier keeps the stats assertions direct.
  SC.Lineage = lineageSinceMark(PV.fingerprint(), Child);
  CertServer Server(Child, SC);

  // The submit is slack-served from the parent's radius-2 proof.
  Certificate Served = Server.submit({2.5f}, 1).get();
  EXPECT_EQ(Served.Kind, VerdictKind::Robust);
  EXPECT_EQ(Served.PoisoningBudget, 1u);
  EXPECT_EQ(Served.CertifiedRadius, 2u);

  // Draining the background queue completes the exact re-verification
  // and writes the fresh certificate under the *child's* fingerprint.
  Server.drainBackground();
  EXPECT_EQ(Server.pendingReverifies(), 0u);
  EXPECT_EQ(Server.reverifiesCompleted(), 1u);

  VerifierConfig Probe = slackConfig();
  Certificate Out;
  ASSERT_TRUE(Backing.lookup(Server.verifier().fingerprint(), X, 1, 1,
                             Probe, Out));
  EXPECT_EQ(Out.Kind, VerdictKind::Robust);
  EXPECT_EQ(Out.CertifiedRadius, 1u); // An exact child proof, not slack.

  // Later identical submits are exact hits on the child's own entry.
  Certificate Warm = Server.submit({2.5f}, 1).get();
  EXPECT_EQ(Warm.Kind, VerdictKind::Robust);
  EXPECT_EQ(Warm.CertifiedRadius, 1u);
  EXPECT_EQ(Server.reverifiesCompleted(), 1u); // No second re-verify.
}

TEST(DeltaSlackTest, ServerWithoutLineageServesExactOnly) {
  Dataset Parent = separatedDataset();
  Verifier PV(Parent);
  CertCache Backing(/*MaxBytes=*/0);
  VerifierConfig Seed = slackConfig();
  Seed.Cache = &Backing;
  const float X[] = {2.5f};
  ASSERT_EQ(PV.verify(X, 2, Seed).Kind, VerdictKind::Robust);

  Dataset Child = separatedDataset();
  Child.removeRow(0);

  CertServerConfig SC;
  SC.Query = slackConfig();
  SC.Jobs = 2;
  SC.Store = &Backing;
  CertServer Server(Child, SC);

  // No lineage declared: the child verifies fresh and never consults
  // the parent's entries.
  Certificate Cert = Server.submit({2.5f}, 1).get();
  EXPECT_EQ(Cert.CertifiedRadius, 1u);
  EXPECT_EQ(Server.pendingReverifies(), 0u);
  EXPECT_EQ(Server.reverifiesCompleted(), 0u);
}
