//===- tests/LabelFlipTests.cpp - Label-flip certification tests --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/LabelFlip.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

//===----------------------------------------------------------------------===//
// Flip transformers
//===----------------------------------------------------------------------===//

TEST(FlipCprobTest, BoundsAreCountPlusMinusBudget) {
  std::vector<Interval> Probs = flipClassProbabilities({7, 2}, 9, 2);
  EXPECT_DOUBLE_EQ(Probs[0].lb(), 5.0 / 9.0);
  EXPECT_DOUBLE_EQ(Probs[0].ub(), 1.0);
  EXPECT_DOUBLE_EQ(Probs[1].lb(), 0.0);
  EXPECT_DOUBLE_EQ(Probs[1].ub(), 4.0 / 9.0);
}

TEST(FlipCprobTest, ZeroBudgetIsExact) {
  std::vector<Interval> Probs = flipClassProbabilities({3, 5}, 8, 0);
  EXPECT_TRUE(Probs[0].isSingleton());
  EXPECT_DOUBLE_EQ(Probs[0].lb(), 3.0 / 8.0);
}

TEST(FlipCprobTest, SoundOverFlipEnumeration) {
  // For every relabeling with <= n flips, the concrete class probability
  // lies in the abstract interval.
  Rng R(515151);
  for (int Trial = 0; Trial < 100; ++Trial) {
    uint32_t C0 = 1 + static_cast<uint32_t>(R.uniformInt(6));
    uint32_t C1 = static_cast<uint32_t>(R.uniformInt(6));
    uint32_t Total = C0 + C1;
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(Total + 1));
    std::vector<Interval> Probs =
        flipClassProbabilities({C0, C1}, Total, Budget);
    // Flipping j0 rows 0->1 and j1 rows 1->0.
    for (uint32_t J0 = 0; J0 <= std::min(C0, Budget); ++J0)
      for (uint32_t J1 = 0; J1 + J0 <= Budget && J1 <= C1; ++J1) {
        double P0 = static_cast<double>(C0 - J0 + J1) / Total;
        double P1 = static_cast<double>(C1 + J0 - J1) / Total;
        EXPECT_TRUE(Probs[0].contains(P0));
        EXPECT_TRUE(Probs[1].contains(P1));
      }
  }
}

TEST(FlipBestSplitTest, ZeroBudgetMatchesConcrete) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  std::vector<SplitPredicate> Preds = flipBestSplit(Ctx, allRows(Data), 0);
  ASSERT_EQ(Preds.size(), 1u);
  EXPECT_DOUBLE_EQ(Preds[0].thresholdValue(), 10.5);
}

TEST(FlipBestSplitTest, PredicatesAreConcreteAndGrowWithBudget) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  size_t Prev = 0;
  for (uint32_t Budget : {0u, 1u, 2u, 4u}) {
    std::vector<SplitPredicate> Preds =
        flipBestSplit(Ctx, allRows(Data), Budget);
    for (const SplitPredicate &Pred : Preds)
      EXPECT_FALSE(Pred.isSymbolic());
    EXPECT_GE(Preds.size(), Prev);
    Prev = Preds.size();
  }
}

TEST(FlipBestSplitTest, CoversConcreteBestOfEveryRelabeling) {
  // The flip analogue of Lemma 4.10, by exhaustive relabeling.
  Rng R(616161);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 7;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 4;
  for (int Trial = 0; Trial < 15; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = 1 + static_cast<uint32_t>(R.uniformInt(2));
    std::vector<SplitPredicate> Psi = flipBestSplit(Ctx, Rows, Budget);
    // Enumerate relabelings and check coverage of each concrete best.
    std::vector<unsigned> Labels(Rows.size());
    for (size_t I = 0; I < Rows.size(); ++I)
      Labels[I] = Data.label(Rows[I]);
    std::function<void(size_t, uint32_t)> Recurse = [&](size_t Index,
                                                        uint32_t Left) {
      if (Index == Rows.size()) {
        Dataset Flipped(Data.schema());
        for (size_t I = 0; I < Rows.size(); ++I)
          Flipped.addRow(Data.row(Rows[I]), Labels[I]);
        SplitContext FlippedCtx(Flipped);
        std::optional<SplitPredicate> Best =
            bestSplit(FlippedCtx, allRows(Flipped));
        if (!Best) {
          EXPECT_TRUE(Psi.empty());
          return;
        }
        EXPECT_NE(std::find(Psi.begin(), Psi.end(), *Best), Psi.end())
            << "flip-concrete best " << Best->str() << " not covered";
        return;
      }
      Recurse(Index + 1, Left);
      if (Left == 0)
        return;
      unsigned Base = Labels[Index];
      for (unsigned C = 0; C < Data.numClasses(); ++C) {
        if (C == Base)
          continue;
        Labels[Index] = C;
        Recurse(Index + 1, Left - 1);
        Labels[Index] = Base;
      }
    };
    Recurse(0, Budget);
  }
}

//===----------------------------------------------------------------------===//
// End-to-end flip verification
//===----------------------------------------------------------------------===//

namespace {

/// A 16-row linearly separable set: feature value I, label I >= 8. Wide
/// margins keep the flip score intervals of boundary-remote predicates
/// above the minimal interval, so flip proofs succeed.
Dataset separableDataset() {
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  for (int I = 0; I < 16; ++I)
    Data.addRow({static_cast<float>(I)}, I < 8 ? 0u : 1u);
  return Data;
}

} // namespace

TEST(LabelFlipVerifyTest, SeparableDataToleratesOneFlip) {
  Dataset Data = separableDataset();
  SplitContext Ctx(Data);
  float X = 2.0f;
  LabelFlipConfig Config;
  Config.Depth = 1;
  LabelFlipResult Result =
      verifyLabelFlipRobustness(Ctx, allRows(Data), &X, 1, Config);
  EXPECT_EQ(Result.RunStatus, LabelFlipResult::Status::Completed);
  EXPECT_TRUE(Result.Robust);
  EXPECT_EQ(Result.DominatingClass, 0u);
  EXPECT_EQ(Result.ConcretePrediction, 0u);
}

TEST(LabelFlipVerifyTest, Figure2IsTooTightForFlipProofs) {
  // On the 13-point running example even one flip (~8% contamination) is
  // unprovable: small split sides get [0, 1] probability intervals, which
  // drag extra predicates into bestSplit# (the flip-model analogue of the
  // §2 imprecision discussion). Enumeration shows x = 18 actually *is*
  // robust — another sound-but-incomplete gap.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 18.0f;
  LabelFlipConfig Config;
  Config.Depth = 1;
  LabelFlipResult Result =
      verifyLabelFlipRobustness(Ctx, allRows(Data), &X, 1, Config);
  EXPECT_FALSE(Result.Robust);
  FlipEnumerationResult Oracle =
      verifyByFlipEnumeration(Ctx, allRows(Data), &X, 1, 1);
  EXPECT_TRUE(Oracle.Robust);
}

TEST(LabelFlipVerifyTest, ZeroBudgetIsAlwaysProvableOffTies) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  LabelFlipConfig Config;
  Config.Depth = 2;
  for (float X : {0.0f, 3.0f, 8.0f, 12.0f, 20.0f}) {
    LabelFlipResult Result =
        verifyLabelFlipRobustness(Ctx, allRows(Data), &X, 0, Config);
    EXPECT_TRUE(Result.Robust) << "x = " << X;
  }
}

TEST(LabelFlipVerifyTest, ExcessiveBudgetUnprovable) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  LabelFlipConfig Config;
  Config.Depth = 1;
  LabelFlipResult Result =
      verifyLabelFlipRobustness(Ctx, allRows(Data), &X, 13, Config);
  EXPECT_FALSE(Result.Robust);
}

TEST(LabelFlipVerifyTest, TimeoutSurfaces) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  LabelFlipConfig Config;
  Config.Depth = 3;
  Config.Limits.TimeoutSeconds = 1e-9;
  LabelFlipResult Result =
      verifyLabelFlipRobustness(Ctx, allRows(Data), &X, 3, Config);
  EXPECT_EQ(Result.RunStatus, LabelFlipResult::Status::Timeout);
  EXPECT_FALSE(Result.Robust);
}

TEST(LabelFlipVerifyTest, ResourceLimitSurfaces) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  LabelFlipConfig Config;
  Config.Depth = 2;
  Config.Limits.MaxDisjuncts = 1;
  LabelFlipResult Result =
      verifyLabelFlipRobustness(Ctx, allRows(Data), &X, 4, Config);
  EXPECT_EQ(Result.RunStatus, LabelFlipResult::Status::ResourceLimit);
}

//===----------------------------------------------------------------------===//
// Flip oracle and soundness
//===----------------------------------------------------------------------===//

TEST(FlipEnumerationTest, CountsLabelings) {
  // 4 rows with a 3-1 majority, budget 1: flipping any single label leaves
  // class 0 with at least a tie (broken toward 0), so the instance is
  // robust at depth 0 and all 1 + 4 labelings are visited.
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 0);
  Data.addRow({2.0f}, 0);
  Data.addRow({3.0f}, 1);
  SplitContext Ctx(Data);
  float X = 0.0f;
  FlipEnumerationResult Result =
      verifyByFlipEnumeration(Ctx, allRows(Data), &X, 1, 0);
  EXPECT_TRUE(Result.Robust);
  EXPECT_EQ(Result.SetsChecked, 5u);
}

TEST(FlipEnumerationTest, DetectsNonRobustInstance) {
  // Depth 0 majority vote 2-1: flipping one majority label creates a 1-2
  // majority for the other class.
  Dataset Data(DatasetSchema::uniform(1, FeatureKind::Real, 2));
  Data.addRow({0.0f}, 0);
  Data.addRow({1.0f}, 0);
  Data.addRow({2.0f}, 1);
  SplitContext Ctx(Data);
  float X = 0.0f;
  FlipEnumerationResult Result =
      verifyByFlipEnumeration(Ctx, allRows(Data), &X, 1, 0);
  EXPECT_FALSE(Result.Robust);
}

namespace {

class FlipSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FlipSoundnessTest, ProofImpliesFlipEnumerationRobust) {
  // Flip proofs need clean margin structure: any kept predicate that
  // leaves x with a side of <= 2n rows yields a [0, 1] probability
  // interval and kills domination. Draw clean separable sets with
  // randomized sizes/boundaries and query points with >= 2 rows of edge
  // clearance and >= 3 of boundary clearance (where proofs are possible),
  // plus fully random noisy sets (which exercise the refutation side).
  Rng R(GetParam());
  unsigned Proven = 0;
  for (int Trial = 0; Trial < 20; ++Trial) {
    bool Clean = Trial % 2 == 0;
    unsigned Rows = 14 + static_cast<unsigned>(R.uniformInt(3));
    unsigned Boundary = 6 + static_cast<unsigned>(R.uniformInt(4));
    Dataset Data(DatasetSchema::uniform(2, FeatureKind::Real, 2));
    for (unsigned I = 0; I < Rows; ++I) {
      unsigned Label = I < Boundary ? 0u : 1u;
      if (!Clean && R.bernoulli(0.15))
        Label ^= 1u;
      Data.addRow({static_cast<float>(I),
                   static_cast<float>(R.uniformInt(4))},
                  Label);
    }
    SplitContext Ctx(Data);
    RowIndexList AllTrainRows = allRows(Data);
    uint32_t Budget = 1;
    unsigned Depth = 1 + static_cast<unsigned>(R.uniformInt(2));
    float QueryIndex = R.bernoulli(0.5)
                           ? static_cast<float>(Boundary - 4)
                           : static_cast<float>(Boundary + 3);
    float X[2] = {QueryIndex, 1.0f};

    LabelFlipConfig Config;
    Config.Depth = Depth;
    LabelFlipResult Abstract =
        verifyLabelFlipRobustness(Ctx, AllTrainRows, X, Budget, Config);
    if (!Abstract.Robust)
      continue;
    ++Proven;
    FlipEnumerationResult Oracle =
        verifyByFlipEnumeration(Ctx, AllTrainRows, X, Budget, Depth);
    EXPECT_TRUE(Oracle.Robust)
        << "flip proof contradicted by enumeration (depth=" << Depth
        << ", boundary=" << Boundary << ")";
    EXPECT_EQ(Abstract.DominatingClass, Oracle.OriginalPrediction);
  }
  EXPECT_GT(Proven, 0u);
}

TEST_P(FlipSoundnessTest, RobustnessAntiMonotoneInBudget) {
  Rng R(GetParam() ^ 0x9999);
  RandomDatasetSpec Spec;
  Spec.MaxRows = 9;
  for (int Trial = 0; Trial < 20; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    SplitContext Ctx(Data);
    std::vector<float> X = makeRandomQuery(R, Spec);
    LabelFlipConfig Config;
    Config.Depth = 2;
    bool Prev = true;
    for (uint32_t N = 0; N <= 3; ++N) {
      LabelFlipResult Result = verifyLabelFlipRobustness(
          Ctx, allRows(Data), X.data(), N, Config);
      if (!Prev) {
        EXPECT_FALSE(Result.Robust) << "proved n=" << N << " but not n-1";
      }
      Prev = Result.Robust;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlipSoundnessTest,
                         ::testing::Values(81ull, 82ull, 83ull));

TEST(LabelFlipVerifyTest, CertifiedFlipBudgetOnSeparableData) {
  // Certify the largest flip budget on the separable set and check it is
  // anti-monotone and non-trivial.
  Dataset Data = separableDataset();
  SplitContext Ctx(Data);
  float X = 2.0f;
  LabelFlipConfig Config;
  Config.Depth = 1;
  uint32_t MaxFlip = 0;
  for (uint32_t N = 1; N <= Data.numRows(); ++N) {
    if (!verifyLabelFlipRobustness(Ctx, allRows(Data), &X, N, Config)
             .Robust)
      break;
    MaxFlip = N;
  }
  EXPECT_GE(MaxFlip, 1u);
  EXPECT_LT(MaxFlip, Data.numRows());
  // And everything below the certified budget is also certified.
  for (uint32_t N = 0; N <= MaxFlip; ++N)
    EXPECT_TRUE(verifyLabelFlipRobustness(Ctx, allRows(Data), &X, N,
                                          Config)
                    .Robust);
}
