//===- tests/FrontierParallelTests.cpp - Frontier-parallel DTrace# ------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Determinism and cancellation of the *within-one-verification* fan-out:
// splitting a DTrace# depth iteration into parallel per-disjunct transfer
// steps plus a sequential in-order merge must leave every observable —
// certificates, the full terminal list, PeakDisjuncts/PeakStateBytes,
// BestSplitCalls — bit-identical to the serial run in all three abstract
// domains, and a token cancelled mid-frontier must still surface its
// reason (mirroring tests/ParallelSweepTests.cpp one level down).
//
//===----------------------------------------------------------------------===//

#include "antidote/Sweep.h"

#include "TestUtil.h"
#include "data/Registry.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>
#include <numeric>
#include <thread>

using namespace antidote;
using namespace antidote::testutil;

namespace {

AbstractDomainKind kAllDomains[] = {AbstractDomainKind::Box,
                                    AbstractDomainKind::Disjuncts,
                                    AbstractDomainKind::DisjunctsCapped};

/// A learner config with no wall clock (timing must not influence the
/// serial-vs-parallel comparison; the caps are still live and exercised).
AbstractLearnerConfig learnerConfig(AbstractDomainKind Domain,
                                    unsigned FrontierJobs) {
  AbstractLearnerConfig Config;
  Config.Depth = 3;
  Config.Domain = Domain;
  Config.DisjunctCap = 8; // Small enough that capped runs overflow-join.
  Config.FrontierJobs = FrontierJobs;
  Config.Limits.TimeoutSeconds = 0.0;
  return Config;
}

/// Everything except Seconds must match exactly, terminal-by-terminal.
void expectIdenticalRuns(const AbstractLearnerResult &Serial,
                         const AbstractLearnerResult &Parallel,
                         const char *Label) {
  EXPECT_EQ(Serial.Status, Parallel.Status) << Label;
  EXPECT_EQ(Serial.DominatingClass, Parallel.DominatingClass) << Label;
  EXPECT_EQ(Serial.Refuted, Parallel.Refuted) << Label;
  EXPECT_EQ(Serial.PeakDisjuncts, Parallel.PeakDisjuncts) << Label;
  EXPECT_EQ(Serial.PeakStateBytes, Parallel.PeakStateBytes) << Label;
  EXPECT_EQ(Serial.BestSplitCalls, Parallel.BestSplitCalls) << Label;
  ASSERT_EQ(Serial.Terminals.size(), Parallel.Terminals.size()) << Label;
  for (size_t I = 0; I < Serial.Terminals.size(); ++I)
    EXPECT_TRUE(Serial.Terminals[I] == Parallel.Terminals[I])
        << Label << ", terminal " << I;
}

} // namespace

//===----------------------------------------------------------------------===//
// OrderedFanout (the support-layer work-chunk helper itself)
//===----------------------------------------------------------------------===//

TEST(OrderedFanoutTest, ComputesEveryItemExactlyOnceInAnyOrder) {
  ThreadPool Pool(3);
  const size_t Count = 1000;
  std::vector<int> Results(Count, -1);
  std::vector<std::atomic<int>> Computed(Count);
  for (auto &C : Computed)
    C.store(0);

  OrderedFanout Fanout(&Pool, Count, /*ChunkSize=*/7, [&](size_t I) {
    Computed[I].fetch_add(1);
    Results[I] = static_cast<int>(I) * 3;
  });
  for (size_t I = 0; I < Count; ++I) {
    Fanout.awaitItem(I);
    EXPECT_EQ(Results[I], static_cast<int>(I) * 3);
  }
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(Computed[I].load(), 1) << "item " << I;
}

TEST(OrderedFanoutTest, NullPoolDegradesToInlineSerialLoop) {
  const size_t Count = 25;
  std::vector<std::thread::id> ComputedBy(Count);
  OrderedFanout Fanout(nullptr, Count, /*ChunkSize=*/0,
                       [&](size_t I) { ComputedBy[I] = std::this_thread::get_id(); });
  for (size_t I = 0; I < Count; ++I)
    Fanout.awaitItem(I);
  for (size_t I = 0; I < Count; ++I)
    EXPECT_EQ(ComputedBy[I], std::this_thread::get_id());
}

TEST(OrderedFanoutTest, BoundedWindowStillComputesEverything) {
  // A claim window bounds worker run-ahead; it must only throttle, never
  // drop or double-compute items.
  ThreadPool Pool(3);
  const size_t Count = 5000;
  std::vector<std::atomic<int>> Computed(Count);
  for (auto &C : Computed)
    C.store(0);
  OrderedFanout Fanout(&Pool, Count, /*ChunkSize=*/8,
                       [&](size_t I) { Computed[I].fetch_add(1); },
                       /*WindowChunks=*/2);
  for (size_t I = 0; I < Count; ++I)
    Fanout.awaitItem(I);
  for (size_t I = 0; I < Count; ++I)
    ASSERT_EQ(Computed[I].load(), 1) << "item " << I;
}

TEST(OrderedFanoutTest, CancelWakesWorkersParkedAtWindowHorizon) {
  // With a tiny window the workers exhaust their claimable range almost
  // immediately and park; cancelRemaining must wake them so the
  // destructor's join cannot hang.
  ThreadPool Pool(2);
  const size_t Count = 100000;
  std::atomic<size_t> Calls{0};
  {
    OrderedFanout Fanout(&Pool, Count, /*ChunkSize=*/4,
                         [&](size_t) { Calls.fetch_add(1); },
                         /*WindowChunks=*/2);
    Fanout.awaitItem(0);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    Fanout.cancelRemaining();
  }
  // The window kept run-ahead bounded: nowhere near Count was computed.
  EXPECT_LT(Calls.load(), Count / 2);
}

TEST(OrderedFanoutTest, CancelRemainingSkipsUnclaimedWork) {
  // Deterministic version: park both workers on gate tasks submitted
  // before the fan-out exists, so its helper tasks queue behind them and
  // no worker can claim a chunk until the gate opens. The consumer then
  // computes items 0..9 inline (awaitItem's claim-or-compute path),
  // cancels, and only then opens the gate: the helpers start, observe the
  // skip flag at the top of drainChunks, and claim nothing. Exactly the
  // ten awaited items run, on every scheduling.
  std::mutex GateMutex; // Declared before the pool: workers use the gate.
  std::condition_variable GateCv;
  bool GateOpen = false;
  ThreadPool Pool(2);
  auto Blocker = [&] {
    std::unique_lock<std::mutex> Lock(GateMutex);
    GateCv.wait(Lock, [&] { return GateOpen; });
  };
  Pool.submit(Blocker);
  Pool.submit(Blocker);

  const size_t Count = 100000;
  std::atomic<size_t> ComputeCalls{0};
  {
    OrderedFanout Fanout(&Pool, Count, /*ChunkSize=*/4,
                         [&](size_t) { ComputeCalls.fetch_add(1); });
    for (size_t I = 0; I < 10; ++I)
      Fanout.awaitItem(I); // Workers are parked: each runs inline.
    Fanout.cancelRemaining();
    {
      std::lock_guard<std::mutex> Lock(GateMutex);
      GateOpen = true;
    }
    GateCv.notify_all();
    // Destructor waits for helpers that started; queued ones exit on
    // entry once they observe teardown.
  }
  EXPECT_EQ(ComputeCalls.load(), 10u);
}

//===----------------------------------------------------------------------===//
// Serial vs parallel frontier stepping: bit-identical results
//===----------------------------------------------------------------------===//

TEST(FrontierParallelTest, LearnerRunsIdenticalAcrossFrontierJobs) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  for (AbstractDomainKind Domain : kAllDomains) {
    for (uint32_t N : {2u, 6u}) {
      AbstractDataset Initial = AbstractDataset::entire(Data, N);
      AbstractLearnerResult Serial =
          runAbstractDTrace(Ctx, Initial, &X, learnerConfig(Domain, 1));
      for (unsigned Jobs : {2u, 8u}) {
        AbstractLearnerResult Parallel =
            runAbstractDTrace(Ctx, Initial, &X, learnerConfig(Domain, Jobs));
        std::string Label = std::string(domainKindName(Domain)) + ", n=" +
                            std::to_string(N) + ", FrontierJobs=" +
                            std::to_string(Jobs);
        expectIdenticalRuns(Serial, Parallel, Label.c_str());
      }
    }
  }
}

TEST(FrontierParallelTest, CompleteTerminalSetsIdenticalWithoutRefutationShortcut) {
  // StopOnRefutation off: the full frontier is traversed, so this compares
  // every terminal the abstraction produces, not just a refuted prefix.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 11.5f;
  for (AbstractDomainKind Domain : kAllDomains) {
    AbstractLearnerConfig SerialConfig = learnerConfig(Domain, 1);
    SerialConfig.StopOnRefutation = false;
    AbstractLearnerConfig ParallelConfig = learnerConfig(Domain, 8);
    ParallelConfig.StopOnRefutation = false;
    AbstractDataset Initial = AbstractDataset::entire(Data, 4);
    expectIdenticalRuns(
        runAbstractDTrace(Ctx, Initial, &X, SerialConfig),
        runAbstractDTrace(Ctx, Initial, &X, ParallelConfig),
        domainKindName(Domain));
  }
}

TEST(FrontierParallelTest, ResourceLimitAbortsIdenticalAcrossFrontierJobs) {
  // A disjunct-cap abort happens mid-frontier; the merge phase must stop
  // at exactly the same disjunct whatever the thread count, leaving the
  // same truncated terminal list and the same status.
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  for (AbstractDomainKind Domain :
       {AbstractDomainKind::Disjuncts, AbstractDomainKind::DisjunctsCapped}) {
    AbstractLearnerConfig SerialConfig = learnerConfig(Domain, 1);
    SerialConfig.StopOnRefutation = false;
    SerialConfig.Limits.MaxDisjuncts = 8;
    AbstractLearnerConfig ParallelConfig = SerialConfig;
    ParallelConfig.FrontierJobs = 8;
    AbstractDataset Initial = AbstractDataset::entire(Data, 6);
    AbstractLearnerResult Serial =
        runAbstractDTrace(Ctx, Initial, &X, SerialConfig);
    EXPECT_EQ(Serial.Status, LearnerStatus::ResourceLimit);
    expectIdenticalRuns(Serial,
                        runAbstractDTrace(Ctx, Initial, &X, ParallelConfig),
                        domainKindName(Domain));
  }
}

TEST(FrontierParallelTest, VerifierCertificatesIdenticalAcrossFrontierJobs) {
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  Verifier V(Bench.Split.Train);
  for (AbstractDomainKind Domain : kAllDomains) {
    VerifierConfig Serial;
    Serial.Depth = 2;
    Serial.Domain = Domain;
    Serial.DisjunctCap = 8;
    Serial.Limits.TimeoutSeconds = 0.0;
    // A handful of rows keeps the 3-domain x 2-job-count product fast.
    std::vector<uint32_t> Rows(Bench.VerifyRows.begin(),
                               Bench.VerifyRows.begin() +
                                   std::min<size_t>(8,
                                                    Bench.VerifyRows.size()));
    for (uint32_t Row : Rows) {
      const float *X = Bench.Split.Test.row(Row);
      Certificate Lone = V.verify(X, /*PoisoningBudget=*/4, Serial);
      for (unsigned Jobs : {2u, 8u}) {
        VerifierConfig Parallel = Serial;
        Parallel.FrontierJobs = Jobs;
        Certificate Cert = V.verify(X, /*PoisoningBudget=*/4, Parallel);
        std::string Label = std::string(domainKindName(Domain)) + ", row " +
                            std::to_string(Row) + ", FrontierJobs=" +
                            std::to_string(Jobs);
        EXPECT_EQ(Cert.Kind, Lone.Kind) << Label;
        EXPECT_EQ(Cert.ConcretePrediction, Lone.ConcretePrediction) << Label;
        EXPECT_EQ(Cert.DominatingClass, Lone.DominatingClass) << Label;
        EXPECT_EQ(Cert.NumTerminals, Lone.NumTerminals) << Label;
        EXPECT_EQ(Cert.PeakDisjuncts, Lone.PeakDisjuncts) << Label;
        EXPECT_EQ(Cert.PeakStateBytes, Lone.PeakStateBytes) << Label;
        EXPECT_EQ(Cert.BestSplitCalls, Lone.BestSplitCalls) << Label;
      }
    }
  }
}

TEST(FrontierParallelTest, SharedFrontierPoolMatchesOwnedPool) {
  // A sweep passes one long-lived pool through VerifierConfig::FrontierPool
  // instead of letting every query spawn its own; results must not care.
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  Verifier V(Bench.Split.Train);
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 0.0;
  const float *X = Bench.Split.Test.row(0);
  Certificate Serial = V.verify(X, 4, Config);

  ThreadPool Shared(3);
  Config.FrontierJobs = 4;
  Config.FrontierPool = &Shared;
  Certificate Pooled = V.verify(X, 4, Config);
  EXPECT_EQ(Pooled.Kind, Serial.Kind);
  EXPECT_EQ(Pooled.NumTerminals, Serial.NumTerminals);
  EXPECT_EQ(Pooled.PeakDisjuncts, Serial.PeakDisjuncts);
  EXPECT_EQ(Pooled.PeakStateBytes, Serial.PeakStateBytes);
  EXPECT_EQ(Pooled.BestSplitCalls, Serial.BestSplitCalls);
}

TEST(FrontierParallelTest, SweepAggregatesIdenticalWithFrontierJobs) {
  // The §6.1 protocol with frontier-level parallelism only (Jobs = 1) and
  // with both fan-out levels on at once must reproduce the serial sweep
  // bit-for-bit, exactly like ParallelSweepTests does for Jobs alone.
  BenchmarkDataset Bench = loadBenchmarkDataset("iris", BenchScale::Scaled);
  SweepConfig Serial;
  Serial.Depths = {1, 2};
  Serial.MaxPoisoning = 64;
  Serial.InstanceLimits.TimeoutSeconds = 0.0;
  Serial.InstanceLimits.MaxDisjuncts = 1u << 14;
  Serial.InstanceLimits.MaxStateBytes = 1ull << 28;
  SweepResult Baseline = runPoisoningSweep(Bench.Split.Train,
                                           Bench.Split.Test, Bench.VerifyRows,
                                           Serial);

  const std::pair<unsigned, unsigned> Combos[] = {{1, 4}, {2, 2}};
  for (auto [Jobs, FrontierJobs] : Combos) {
    SweepConfig Parallel = Serial;
    Parallel.Jobs = Jobs;
    Parallel.FrontierJobs = FrontierJobs;
    SweepResult Result = runPoisoningSweep(
        Bench.Split.Train, Bench.Split.Test, Bench.VerifyRows, Parallel);
    ASSERT_EQ(Result.Series.size(), Baseline.Series.size());
    for (size_t S = 0; S < Result.Series.size(); ++S) {
      const SweepSeries &X = Baseline.Series[S];
      const SweepSeries &Y = Result.Series[S];
      EXPECT_EQ(X.MaxVerifiedN, Y.MaxVerifiedN);
      ASSERT_EQ(X.Cells.size(), Y.Cells.size());
      for (size_t C = 0; C < X.Cells.size(); ++C) {
        EXPECT_EQ(X.Cells[C].Poisoning, Y.Cells[C].Poisoning);
        EXPECT_EQ(X.Cells[C].Attempted, Y.Cells[C].Attempted);
        EXPECT_EQ(X.Cells[C].Verified, Y.Cells[C].Verified);
        EXPECT_EQ(X.Cells[C].ResourceFailures, Y.Cells[C].ResourceFailures);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Cancellation mid-frontier
//===----------------------------------------------------------------------===//

TEST(FrontierParallelTest, MidFrontierCancellationReportsDeadlineReason) {
  // Cancel for deadline reasons from another thread while a parallel
  // frontier is in flight: the merge phase's next poll must wind the run
  // down and the status must be Timeout, not Cancelled — the same
  // guarantee ParallelSweepTests asserts for the serial learner.
  BenchmarkDataset Bench =
      loadBenchmarkDataset("mammography", BenchScale::Scaled);
  SplitContext Ctx(Bench.Split.Train);
  AbstractLearnerConfig Config;
  Config.Depth = 5;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.StopOnRefutation = false;
  Config.FrontierJobs = 4;
  Config.Limits.MaxDisjuncts = 0;  // Uncapped:
  Config.Limits.MaxStateBytes = 0; // only the token can stop this run.
  CancellationToken Token;
  Config.Cancel = &Token;
  AbstractDataset Initial = AbstractDataset::entire(Bench.Split.Train, 16);

  std::thread Canceller([&Token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    Token.cancel(BudgetOutcome::Timeout);
  });
  AbstractLearnerResult Result = runAbstractDTrace(
      Ctx, Initial, Bench.Split.Test.row(0), Config);
  Canceller.join();
  EXPECT_EQ(Result.Status, LearnerStatus::Timeout);
  EXPECT_FALSE(Result.DominatingClass.has_value());
  // Early stop, not a full traversal: generous headroom because the
  // sanitizer CI jobs slow wind-down latency 5-15x, but still far below
  // the uncancelled traversal (seconds natively, minutes under TSan).
  EXPECT_LT(Result.Seconds, 5.0);
}

TEST(FrontierParallelTest, PreCancelledTokenStopsParallelFrontierRun) {
  Dataset Data = figure2Dataset();
  SplitContext Ctx(Data);
  float X = 5.0f;
  CancellationToken Token;
  Token.cancel();

  AbstractLearnerConfig Config = learnerConfig(AbstractDomainKind::Disjuncts, 8);
  Config.Depth = 4;
  Config.Cancel = &Token;
  AbstractDataset Initial = AbstractDataset::entire(Data, 6);
  AbstractLearnerResult Result = runAbstractDTrace(Ctx, Initial, &X, Config);
  EXPECT_EQ(Result.Status, LearnerStatus::Cancelled);
  EXPECT_TRUE(Result.Terminals.empty());
  EXPECT_FALSE(Result.DominatingClass.has_value());
}
