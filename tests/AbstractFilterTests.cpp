//===- tests/AbstractFilterTests.cpp - filter# unit tests ---------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractFilter.h"

#include "TestUtil.h"
#include "concrete/BestSplit.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

TEST(AbstractFilterTest, Example48SingleSatisfiedPredicate) {
  // Example 4.8: x = 4, Ψ = {x ≤ 10}; Ψ¬x is empty, so the result is just
  // ⟨T↓x≤10, 2⟩.
  Dataset Data = figure2Dataset();
  AbstractDataset A = AbstractDataset::entire(Data, 2);
  PredicateSet Psi;
  Psi.add(SplitPredicate::threshold(0, 10.0));
  float X = 4.0f;
  AbstractDataset Filtered = abstractFilter(A, Psi, &X);
  EXPECT_EQ(Filtered.size(), 9u);
  EXPECT_EQ(Filtered.budget(), 2u);
  EXPECT_EQ(Filtered.counts()[0], 7u);
  EXPECT_EQ(Filtered.counts()[1], 2u);
}

TEST(AbstractFilterTest, Example53JoinImprecision) {
  // Example 5.3: T = {0..4, 7..10} with n = 1, Ψ = {x ≤ 3, x ≤ 4}, x = 4.
  // The box join must produce ⟨T, 5⟩ — the documented precision loss.
  Dataset Data = figure2Dataset();
  RowIndexList Rows = {0, 1, 2, 3, 4, 5, 6, 7, 8}; // Values 0..4, 7..10.
  AbstractDataset A(Data, Rows, 1);
  PredicateSet Psi;
  Psi.add(SplitPredicate::threshold(0, 3.0));
  Psi.add(SplitPredicate::threshold(0, 4.0));
  float X = 4.0f;
  AbstractDataset Filtered = abstractFilter(A, Psi, &X);
  EXPECT_EQ(Filtered.rows(), Rows); // Back to the full set...
  EXPECT_EQ(Filtered.budget(), 5u); // ...with a much larger budget.
}

TEST(AbstractFilterTest, MaybePredicateContributesBothSides) {
  // A symbolic predicate that is 'maybe' on x adds both its restrictions.
  Dataset Data = figure2Dataset();
  AbstractDataset A = AbstractDataset::entire(Data, 1);
  PredicateSet Psi;
  Psi.add(SplitPredicate::symbolic(0, 4.0, 7.0));
  float X = 5.0f; // Strictly between 4 and 7 → maybe.
  AbstractDataset Filtered = abstractFilter(A, Psi, &X);
  // Positive side possible rows: values < 7 (rows 0..4); negative side
  // possible rows: values > 4 (rows 5..12); the join is the whole set.
  EXPECT_EQ(Filtered.size(), 13u);
}

TEST(AbstractFilterTest, DisagreeingPredicatesJoinBothBranches) {
  Dataset Data = figure2Dataset();
  AbstractDataset A = AbstractDataset::entire(Data, 0);
  PredicateSet Psi;
  Psi.add(SplitPredicate::threshold(0, 3.0));  // x=4 falsifies.
  Psi.add(SplitPredicate::threshold(0, 10.0)); // x=4 satisfies.
  float X = 4.0f;
  AbstractDataset Filtered = abstractFilter(A, Psi, &X);
  // ⟨T↓>3, 0⟩ ⊔ ⟨T↓≤10, 0⟩: both sides have 9 rows, the union is all 13,
  // and each side misses 4 of the other's rows, so Definition 4.1 gives
  // budget max(4 + 0, 4 + 0) = 4.
  EXPECT_EQ(Filtered.size(), 13u);
  EXPECT_EQ(Filtered.budget(), 4u);
}

//===----------------------------------------------------------------------===//
// Proposition 4.7 / B.4 soundness property
//===----------------------------------------------------------------------===//

namespace {

class FilterSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FilterSoundnessTest, ContainsEveryConcreteFilter) {
  // For every T' ∈ γ(⟨T,n⟩), every φ' ∈ γ(Ψ), and the actual side x takes:
  // filter(T', φ', x) ∈ γ(filter#(⟨T,n⟩, Ψ, x)).
  Rng R(GetParam());
  RandomDatasetSpec Spec;
  Spec.MaxRows = 8;
  Spec.NumFeatures = 2;
  Spec.DistinctValues = 4;
  for (int Trial = 0; Trial < 30; ++Trial) {
    Dataset Data = makeRandomDataset(R, Spec);
    RowIndexList Rows = allRows(Data);
    uint32_t Budget = static_cast<uint32_t>(R.uniformInt(3));
    AbstractDataset A(Data, Rows, Budget);

    // Random predicate set with 1-3 members, mixing concrete and symbolic.
    PredicateSet Psi;
    unsigned NumPreds = 1 + static_cast<unsigned>(R.uniformInt(3));
    for (unsigned I = 0; I < NumPreds; ++I) {
      uint32_t F = static_cast<uint32_t>(R.uniformInt(2));
      double Lo = static_cast<double>(R.uniformInt(4));
      if (R.bernoulli(0.5))
        Psi.add(SplitPredicate::threshold(F, Lo + 0.5));
      else
        Psi.add(SplitPredicate::symbolic(F, Lo, Lo + 1.0));
    }
    Psi.canonicalize();
    std::vector<float> X = makeRandomQuery(R, Spec);
    AbstractDataset Filtered = abstractFilter(A, Psi, X.data());

    forEachPerturbedSubset(Rows, Budget, [&](const RowIndexList &Subset) {
      for (const SplitPredicate &Rho : Psi.predicates()) {
        // Sample concrete thresholds from γ(ρ).
        for (double Tau = Rho.lo(); Tau <= Rho.hi(); Tau += 0.5) {
          if (Rho.isSymbolic() && Tau >= Rho.hi())
            continue;
          if (!Rho.isSymbolic() && Tau != Rho.lo())
            continue;
          SplitPredicate Phi =
              SplitPredicate::threshold(Rho.feature(), Tau);
          bool Sat = Phi.evaluate(X.data()) == ThreeValued::True;
          RowIndexList Concrete =
              filterRows(Data, Subset, Phi, Sat);
          EXPECT_TRUE(Filtered.concretizationContains(Concrete))
              << "filter(T', " << Phi.str() << ", x) escaped filter#";
        }
      }
    });
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterSoundnessTest,
                         ::testing::Values(7ull, 8ull, 9ull));
