//===- tests/SweepTests.cpp - Experiment protocol tests -----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "antidote/Sweep.h"

#include "TestUtil.h"
#include "antidote/Report.h"

#include <gtest/gtest.h>

using namespace antidote;
using namespace antidote::testutil;

namespace {

/// A tiny separable train/test pair the protocol can chew through quickly.
struct TinyBench {
  Dataset Train;
  Dataset Test;
  std::vector<uint32_t> VerifyRows;

  TinyBench()
      : Train(DatasetSchema::uniform(1, FeatureKind::Real, 2)),
        Test(DatasetSchema::uniform(1, FeatureKind::Real, 2)) {
    for (int I = 0; I < 16; ++I)
      Train.addRow({static_cast<float>(I)}, I < 8 ? 0u : 1u);
    for (int I = 0; I < 6; ++I) {
      Test.addRow({static_cast<float>(I) + 0.25f}, I < 3 ? 0u : 1u);
      VerifyRows.push_back(static_cast<uint32_t>(I));
    }
  }
};

SweepConfig tinyConfig() {
  SweepConfig Config;
  Config.Depths = {1, 2};
  Config.MaxPoisoning = 16;
  Config.InstanceLimits.TimeoutSeconds = 5.0;
  return Config;
}

} // namespace

TEST(SweepTest, ProtocolProducesSeriesPerDepthAndDomain) {
  TinyBench Bench;
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, tinyConfig());
  EXPECT_EQ(Result.Series.size(), 4u); // 2 depths x 2 domains.
  for (const SweepSeries &S : Result.Series) {
    EXPECT_FALSE(S.Cells.empty());
    EXPECT_EQ(S.MaxVerifiedN.size(), Bench.VerifyRows.size());
    // Cells sorted ascending in n, starting at 1.
    EXPECT_EQ(S.Cells.front().Poisoning, 1u);
    for (size_t I = 1; I < S.Cells.size(); ++I)
      EXPECT_LT(S.Cells[I - 1].Poisoning, S.Cells[I].Poisoning);
  }
}

TEST(SweepTest, SeparableDataVerifiesAtSmallN) {
  TinyBench Bench;
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, tinyConfig());
  // The margin is wide: at n = 1 everything should verify at depth 1.
  double Fraction = Result.fractionVerified(1, 1);
  EXPECT_DOUBLE_EQ(Fraction, 1.0);
  // And nothing verifies beyond |T|.
  EXPECT_DOUBLE_EQ(Result.fractionVerified(1, 16), 0.0);
}

TEST(SweepTest, FractionVerifiedIsAntiMonotoneInN) {
  TinyBench Bench;
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, tinyConfig());
  for (unsigned Depth : {1u, 2u}) {
    double Prev = 1.0;
    for (uint32_t N : Result.attemptedPoisonings(Depth)) {
      double Fraction = Result.fractionVerified(Depth, N);
      EXPECT_LE(Fraction, Prev + 1e-12);
      Prev = Fraction;
    }
  }
}

TEST(SweepTest, DomainFilterRestrictsUnion) {
  TinyBench Bench;
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, tinyConfig());
  for (uint32_t N : Result.attemptedPoisonings(1)) {
    double Box = Result.fractionVerified(1, N, {"box"});
    double Disj = Result.fractionVerified(1, N, {"disjuncts"});
    double Union = Result.fractionVerified(1, N);
    EXPECT_GE(Union, Box);
    EXPECT_GE(Union, Disj);
    EXPECT_LE(Union, Box + Disj + 1e-12);
  }
}

TEST(SweepTest, CellStatisticsAreConsistent) {
  TinyBench Bench;
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, tinyConfig());
  for (const SweepSeries &S : Result.Series)
    for (const SweepCell &Cell : S.Cells) {
      EXPECT_LE(Cell.Verified + Cell.Timeouts + Cell.ResourceFailures,
                Cell.Attempted);
      EXPECT_GE(Cell.avgSeconds(), 0.0);
      EXPECT_GE(Cell.avgPeakStateBytes(), 0.0);
      EXPECT_GT(Cell.Attempted, 0u);
    }
}

TEST(SweepTest, BinarySearchProbesBetweenLastSuccessAndFailure) {
  // With survivors at some n and total failure at 2n, the protocol should
  // record probes strictly between them.
  TinyBench Bench;
  SweepConfig Config = tinyConfig();
  Config.Depths = {1};
  Config.Domains = {{"box", AbstractDomainKind::Box, 0}};
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, Config);
  ASSERT_EQ(Result.Series.size(), 1u);
  const SweepSeries &S = Result.Series[0];
  // Max verified n across instances.
  uint32_t MaxN = 0;
  for (uint32_t N : S.MaxVerifiedN)
    MaxN = std::max(MaxN, N);
  ASSERT_GT(MaxN, 0u);
  // Some probe at the exact frontier: there is a cell with Poisoning ==
  // MaxN where at least one instance verified, and (if MaxN isn't the last
  // doubling point) a failing probe above it.
  bool FrontierSeen = false;
  for (const SweepCell &Cell : S.Cells)
    if (Cell.Poisoning == MaxN && Cell.Verified > 0)
      FrontierSeen = true;
  EXPECT_TRUE(FrontierSeen);
  // Binary search means the attempted n values are not only powers of two
  // unless the frontier happens to be one.
  bool NonPowerOfTwo = false;
  for (const SweepCell &Cell : S.Cells)
    if ((Cell.Poisoning & (Cell.Poisoning - 1)) != 0)
      NonPowerOfTwo = true;
  bool FrontierIsPower = (MaxN & (MaxN - 1)) == 0;
  if (!FrontierIsPower) {
    EXPECT_TRUE(NonPowerOfTwo);
  }
}

TEST(SweepTest, DisablingBinarySearchLimitsToPowersOfTwo) {
  TinyBench Bench;
  SweepConfig Config = tinyConfig();
  Config.BinarySearchOnFailure = false;
  SweepResult Result = runPoisoningSweep(Bench.Train, Bench.Test,
                                         Bench.VerifyRows, Config);
  for (const SweepSeries &S : Result.Series)
    for (const SweepCell &Cell : S.Cells)
      EXPECT_EQ(Cell.Poisoning & (Cell.Poisoning - 1), 0u)
          << Cell.Poisoning << " attempted without binary search";
}

//===----------------------------------------------------------------------===//
// Report formatting
//===----------------------------------------------------------------------===//

TEST(ReportTest, FormatSeconds) {
  EXPECT_EQ(formatSeconds(0.000001), "1 us");
  EXPECT_EQ(formatSeconds(0.0123), "12.3 ms");
  EXPECT_EQ(formatSeconds(1.5), "1.50 s");
}

TEST(ReportTest, FormatBytes) {
  EXPECT_EQ(formatBytes(512), "512 B");
  EXPECT_EQ(formatBytes(2048), "2.0 KB");
  EXPECT_EQ(formatBytes(3.5 * 1024 * 1024), "3.5 MB");
  EXPECT_EQ(formatBytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

TEST(ReportTest, FormatPercentAndDouble) {
  EXPECT_EQ(formatPercent(0.974), "97.4");
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

TEST(ReportTest, TableAlignsColumns) {
  TableWriter Table({"name", "n"});
  Table.addRow({"alpha", "1"});
  Table.addRow({"b", "12345"});
  std::string Path = ::testing::TempDir() + "/antidote_table_test.txt";
  std::FILE *F = std::fopen(Path.c_str(), "w+");
  ASSERT_NE(F, nullptr);
  Table.print(F);
  std::fflush(F);
  std::rewind(F);
  char Buf[256];
  std::string Content;
  while (std::fgets(Buf, sizeof(Buf), F))
    Content += Buf;
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_NE(Content.find("name   n"), std::string::npos);
  EXPECT_NE(Content.find("alpha  1"), std::string::npos);
  EXPECT_NE(Content.find("-----"), std::string::npos);
}
