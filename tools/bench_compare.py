#!/usr/bin/env python3
"""Compare two google-benchmark JSON result sets and gate on regressions.

The CI `bench-regression` job feeds this the previous main run's
`BENCH_*.json` files (restored via actions/cache) and the current run's,
and fails the job when any gated benchmark slowed down by more than the
tolerance (default 25%). Output is a GitHub-flavoured markdown table
suitable for `$GITHUB_STEP_SUMMARY`.

Gated benchmarks (the hot paths the recent PRs built): the cache-hit
path, the frontier fan-out, the bestSplit# sharding, and the disk-store
restart path. Comparison uses *cpu_time* — wall clock on shared runners
is hostage to the neighbours, and every gated path's win is
CPU-visible — normalized through each entry's `time_unit`.

Exit codes: 0 = no regression (including "no baseline yet" and "bench
missing from baseline"), 1 = at least one gated benchmark regressed
past tolerance, 2 = usage error.

`--inject-slowdown F` multiplies every current time by F. It exists so
the gate itself can be verified end to end from the workflow-dispatch
input without committing a deliberate slowdown: dispatch with factor 2.0
and the job must go red.
"""

import argparse
import glob
import json
import os
import re
import sys

# One regex per gated family; everything else in the JSON is reported
# as informational only. The BM_Kernel / bestSplit / Gini / restrict
# families are the SoA-layout vectorized kernels; their stable
# measurements come from BENCH_kernels.json (rerun at a longer min
# time), which load_benchmarks' first-write-wins merge prefers over
# the quick full-sweep numbers.
DEFAULT_PATTERNS = [
    r"^BM_CacheHitRate",
    r"^BM_VerifyFrontierJobs",
    r"^BM_BestSplitJobs",
    r"^BM_DiskStoreHitRate",
    r"^BM_DeltaHitRate",
    r"^BM_Kernel",
    r"^BM_ConcreteBestSplit",
    r"^BM_AbstractBestSplit",
    r"^BM_AbstractRestrict",
    r"^BM_AbstractGini",
    r"^BM_FlipVerify",
]
# (BM_AbstractGini was informational while it timed a single ~10 ns
# call — code layout alone moved that past the tolerance. It now sweeps
# 256 probability vectors per iteration, putting it at microsecond
# scale, steady enough to gate.)

UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def load_benchmarks(directory):
    """name -> cpu_time in ns, merged across every BENCH_*.json found."""
    merged = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as err:
            print(f"> :warning: skipping unreadable `{path}`: {err}")
            continue
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name")
            cpu = bench.get("cpu_time")
            unit = bench.get("time_unit", "ns")
            if name is None or cpu is None or unit not in UNIT_TO_NS:
                continue
            # First write wins when a bench lands in two files: the
            # dedicated per-family files (BENCH_cache_hit_rate.json,
            # BENCH_disk_store.json — rerun at a longer min_time for
            # stability) sort before the full BENCH_micro.json sweep,
            # so the stable measurement is the one the gate compares.
            merged.setdefault(name, cpu * UNIT_TO_NS[unit])
    return merged


def fmt_ns(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline_dir", help="previous run's BENCH_*.json")
    parser.add_argument("current_dir", help="this run's BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed slowdown fraction (default 0.25)")
    parser.add_argument("--pattern", action="append", default=None,
                        metavar="REGEX",
                        help="gated benchmark name regex (repeatable; "
                             "default: cache-hit / frontier / split / "
                             "disk-store families)")
    parser.add_argument("--inject-slowdown", type=float, default=1.0,
                        metavar="FACTOR",
                        help="multiply current times by FACTOR (gate "
                             "self-test; dispatch with 2.0 and the job "
                             "must fail)")
    args = parser.parse_args()
    if args.tolerance < 0 or args.inject_slowdown <= 0:
        parser.error("tolerance must be >= 0 and inject-slowdown > 0")
    patterns = [re.compile(p) for p in (args.pattern or DEFAULT_PATTERNS)]

    print("## Bench regression gate")
    print()
    if args.inject_slowdown != 1.0:
        print(f"> :warning: self-test mode: current times multiplied by "
              f"{args.inject_slowdown:g}")
        print()

    baseline = load_benchmarks(args.baseline_dir)
    current = load_benchmarks(args.current_dir)
    if not current:
        print(f"> :x: no `BENCH_*.json` under `{args.current_dir}` — the "
              f"bench run itself is broken.")
        return 1
    if not baseline:
        print(f"> :seedling: no baseline under `{args.baseline_dir}` yet "
              f"(first run on this cache key); gate passes, this run "
              f"seeds the baseline.")
        return 0

    gated = lambda name: any(p.search(name) for p in patterns)
    rows = []
    regressions = []
    for name in sorted(current):
        cur = current[name] * args.inject_slowdown
        base = baseline.get(name)
        if base is None:
            status = "new (no baseline)" if gated(name) else "info: new"
            rows.append((name, "—", fmt_ns(cur), "—", status))
            continue
        ratio = cur / base if base > 0 else float("inf")
        if not gated(name):
            status = "info"
        elif ratio > 1.0 + args.tolerance:
            status = ":x: **REGRESSION**"
            regressions.append((name, ratio))
        elif ratio < 1.0 - args.tolerance:
            status = ":zap: improved"
        else:
            status = ":white_check_mark: ok"
        rows.append((name, fmt_ns(base), fmt_ns(cur), f"{ratio:.2f}x",
                     status))
    # A gated bench present in the baseline but absent now is itself a
    # gate failure: google-benchmark drops entries that errored
    # (SkipWithError), so "the bench vanished" usually means the very
    # path the gate guards stopped working. A legitimate rename goes
    # red once and clears when main's baseline refreshes.
    for name in sorted(set(baseline) - set(current)):
        if gated(name):
            rows.append((name, fmt_ns(baseline[name]), "—", "—",
                         ":x: **gated bench disappeared**"))
            regressions.append((name, float("inf")))

    print(f"Tolerance: {args.tolerance:.0%} slowdown on gated benches "
          f"(cpu_time).")
    print()
    print("| benchmark | baseline | current | ratio | status |")
    print("|---|---|---|---|---|")
    for name, base, cur, ratio, status in rows:
        print(f"| `{name}` | {base} | {cur} | {ratio} | {status} |")
    print()

    if regressions:
        worst = ", ".join(
            f"`{n}` ({'gone' if r == float('inf') else f'{r:.2f}x'})"
            for n, r in regressions)
        print(f"**{len(regressions)} gated benchmark(s) regressed past "
              f"{args.tolerance:.0%}: {worst}.** If the slowdown is "
              f"intended (e.g. a correctness fix), refresh the baseline "
              f"by merging — the gate compares against the last main "
              f"run.")
        return 1
    print("No gated benchmark regressed past tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
