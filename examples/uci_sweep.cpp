//===- examples/uci_sweep.cpp - Sweep a benchmark or CSV dataset --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Runs the paper's §6.1 experimental protocol against one of the built-in
// benchmark datasets or a user-provided CSV file, and prints the
// fraction-verified curve (one row of the paper's Figure 6).
//
// Usage:
//   uci_sweep [--jobs N] [--frontier-jobs N] [--threat removal|flip]
//             [dataset-name]
//   uci_sweep [--jobs N] [--frontier-jobs N] --csv train.csv test.csv
//
//===----------------------------------------------------------------------===//

#include "antidote/Report.h"
#include "antidote/Sweep.h"
#include "data/Csv.h"
#include "data/Registry.h"
#include "serving/CertCache.h"
#include "serving/DiskCertStore.h"
#include "serving/TieredStore.h"
#include "support/Parse.h"

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace antidote;

static void printUsage(const char *Program) {
  std::printf("usage: %s [--jobs N] [--frontier-jobs N] [--split-jobs N] "
              "[--threat removal|flip] [--cache-bytes B] [--cache-dir DIR] "
              "[--delta-slack 0|1] [dataset-name]\n",
              Program);
  std::printf("       %s [--jobs N] [--frontier-jobs N] [--split-jobs N] "
              "[--threat removal|flip] [--cache-bytes B] [--cache-dir DIR] "
              "[--delta-slack 0|1] --csv <train.csv> <test.csv>\n",
              Program);
  std::printf("knobs (flag beats env-var twin beats default; malformed "
              "values in either error out):\n");
  std::printf("  --jobs N           per-instance worker threads "
              "(0 = all cores;\n"
              "                     env ANTIDOTE_JOBS; default 1)\n");
  std::printf("  --frontier-jobs N  executors inside each instance's "
              "DTrace# frontier\n"
              "                     (0 = all cores; env "
              "ANTIDOTE_FRONTIER_JOBS; default 1)\n");
  std::printf("  --split-jobs N     executors inside each bestSplit# "
              "candidate scoring\n"
              "                     pass (0 = all cores; env "
              "ANTIDOTE_SPLIT_JOBS; default 1)\n");
  std::printf("  --threat MODEL     poisoning model: 'removal' (attacker "
              "added up to\n"
              "                     n rows) or 'flip' (attacker relabeled "
              "up to n rows;\n"
              "                     disjuncts domain only — box cells are "
              "skipped);\n"
              "                     env ANTIDOTE_THREAT; default "
              "removal\n");
  std::printf("  --cache-bytes B    attach a certificate cache with "
              "byte budget B\n"
              "                     (0 = unbounded; env "
              "ANTIDOTE_CACHE_BYTES; default off —\n"
              "                     a sweep's probes rarely repeat, so "
              "this mainly\n"
              "                     demonstrates the serving layer's "
              "plumbing)\n");
  std::printf("  --cache-dir DIR    persistent certificate store "
              "directory (created\n"
              "                     if missing; env ANTIDOTE_CACHE_DIR; "
              "default off).\n"
              "                     Two-tier: RAM LRU in front, disk "
              "behind — a re-run\n"
              "                     of the same sweep answers its "
              "deterministic cells\n"
              "                     from disk; unusable paths error "
              "out\n");
  std::printf("  --delta-slack 0|1  delta-tolerant serving: answer from "
              "a lineage\n"
              "                     parent's certificates when the store "
              "misses under\n"
              "                     this dataset's own fingerprint "
              "(sound for pure-removal\n"
              "                     deltas; env ANTIDOTE_DELTA_SLACK; "
              "default 1;\n"
              "                     0 = exact/range matches only, for "
              "A/B runs)\n");
  std::printf("built-in datasets:");
  for (const std::string &Name : benchmarkDatasetNames())
    std::printf(" %s", Name.c_str());
  std::printf("\n");
}

int main(int Argc, char **Argv) {
  Dataset Train, Test;
  std::vector<uint32_t> VerifyRows;
  std::string Name = "mammography";
  unsigned Jobs = 1;
  unsigned FrontierJobs = 1;
  unsigned SplitJobs = 1;
  uint64_t CacheBytes = 0;
  bool CacheEnabled = false;
  std::string CacheDir;
  bool DeltaSlack = true;
  ThreatModelKind Threat = ThreatModelKind::Removal;
  const char *Program = Argv[0];

  // Environment twins first (flags override them below); malformed env
  // values are as fatal as malformed flags (shared report in
  // support/Parse).
  const std::pair<const char *, unsigned *> EnvJobs[] = {
      {"ANTIDOTE_JOBS", &Jobs},
      {"ANTIDOTE_FRONTIER_JOBS", &FrontierJobs},
      {"ANTIDOTE_SPLIT_JOBS", &SplitJobs}};
  for (const auto &[EnvName, Out] : EnvJobs) {
    EnvNumber Env = readUnsignedEnvReporting(EnvName, "all cores", UINT_MAX);
    if (Env.Status == EnvNumberStatus::Malformed)
      return 1;
    if (Env.Status == EnvNumberStatus::Ok)
      *Out = static_cast<unsigned>(Env.Value);
  }
  {
    EnvNumber Env =
        readUnsignedEnvReporting("ANTIDOTE_CACHE_BYTES", "unbounded");
    if (Env.Status == EnvNumberStatus::Malformed)
      return 1;
    if (Env.Status == EnvNumberStatus::Ok) {
      CacheBytes = Env.Value;
      CacheEnabled = true;
    }
  }
  if (std::optional<std::string> Dir = readStringEnv("ANTIDOTE_CACHE_DIR")) {
    CacheDir = *Dir;
    CacheEnabled = true;
  }
  {
    EnvNumber Env =
        readUnsignedEnvReporting("ANTIDOTE_DELTA_SLACK", "disabled", 1);
    if (Env.Status == EnvNumberStatus::Malformed)
      return 1;
    if (Env.Status == EnvNumberStatus::Ok)
      DeltaSlack = Env.Value != 0;
  }
  if (std::optional<std::string> Env = readStringEnv("ANTIDOTE_THREAT")) {
    std::optional<ThreatModelKind> Parsed = parseThreatModelName(*Env);
    if (!Parsed) {
      std::fprintf(stderr,
                   "error: ANTIDOTE_THREAT must be 'removal' or 'flip', "
                   "got '%s'\n",
                   Env->c_str());
      return 1;
    }
    Threat = *Parsed;
  }

  // Extract the jobs/cache flags from any position; the remaining
  // arguments keep their historical positional meaning. Values parse
  // checked — garbage errors out instead of silently becoming 0 (bare
  // atoi).
  std::vector<char *> Rest = {Argv[0]};
  for (int I = 1; I < Argc; ++I) {
    bool IsJobs = std::strcmp(Argv[I], "--jobs") == 0;
    bool IsFrontier = std::strcmp(Argv[I], "--frontier-jobs") == 0;
    bool IsSplit = std::strcmp(Argv[I], "--split-jobs") == 0;
    bool IsCache = std::strcmp(Argv[I], "--cache-bytes") == 0;
    if (std::strcmp(Argv[I], "--cache-dir") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --cache-dir needs a value\n");
        return 1;
      }
      CacheDir = Argv[++I];
      CacheEnabled = true;
      continue;
    }
    if (std::strcmp(Argv[I], "--threat") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --threat needs a value\n");
        return 1;
      }
      std::optional<ThreatModelKind> Parsed =
          parseThreatModelName(Argv[++I]);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: --threat must be 'removal' or 'flip', got "
                     "'%s'\n",
                     Argv[I]);
        return 1;
      }
      Threat = *Parsed;
      continue;
    }
    if (std::strcmp(Argv[I], "--delta-slack") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --delta-slack needs a value\n");
        return 1;
      }
      std::optional<uint64_t> Parsed = parseUnsignedArg(Argv[++I], 1);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: --delta-slack needs 0 or 1, got '%s'\n",
                     Argv[I]);
        return 1;
      }
      DeltaSlack = *Parsed != 0;
      continue;
    }
    if (IsJobs || IsFrontier || IsSplit || IsCache) {
      const char *Flag = Argv[I];
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: %s needs a value\n", Flag);
        return 1;
      }
      std::optional<uint64_t> Parsed = parseUnsignedArg(
          Argv[++I], IsCache ? static_cast<uint64_t>(-1) : UINT_MAX);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: %s needs an unsigned integer (0 = %s), "
                     "got '%s'\n",
                     Flag, IsCache ? "unbounded" : "all cores", Argv[I]);
        return 1;
      }
      if (IsCache) {
        CacheBytes = *Parsed;
        CacheEnabled = true;
        continue;
      }
      (IsJobs ? Jobs : IsFrontier ? FrontierJobs : SplitJobs) =
          static_cast<unsigned>(*Parsed);
      continue;
    }
    Rest.push_back(Argv[I]);
  }
  Argc = static_cast<int>(Rest.size());
  Argv = Rest.data();

  if (Argc >= 2 && std::strcmp(Argv[1], "--help") == 0) {
    printUsage(Program);
    return 0;
  }
  if (Argc >= 2 && std::strcmp(Argv[1], "--csv") == 0) {
    if (Argc < 4) {
      printUsage(Program);
      return 1;
    }
    CsvLoadResult TrainResult = loadCsvDataset(Argv[2]);
    if (!TrainResult.succeeded()) {
      std::fprintf(stderr, "error: %s\n", TrainResult.Error.c_str());
      return 1;
    }
    CsvLoadResult TestResult =
        loadCsvDataset(Argv[3], TrainResult.Data->schema());
    if (!TestResult.succeeded()) {
      std::fprintf(stderr, "error: %s\n", TestResult.Error.c_str());
      return 1;
    }
    Train = std::move(*TrainResult.Data);
    Test = std::move(*TestResult.Data);
    for (uint32_t Row = 0; Row < Test.numRows(); ++Row)
      VerifyRows.push_back(Row);
    Name = Argv[2];
  } else {
    if (Argc >= 2)
      Name = Argv[1];
    BenchmarkDataset Bench = loadBenchmarkDataset(Name, BenchScale::Scaled);
    Train = std::move(Bench.Split.Train);
    Test = std::move(Bench.Split.Test);
    VerifyRows = std::move(Bench.VerifyRows);
  }

  std::printf("=== Poisoning-robustness sweep: %s (threat %s) ===\n",
              Name.c_str(), threatModelName(Threat));
  std::printf("train %u rows x %u features, verifying %zu test inputs, "
              "%u job(s), %u frontier job(s), %u split job(s)\n",
              Train.numRows(), Train.numFeatures(), VerifyRows.size(),
              Jobs, FrontierJobs, SplitJobs);
  if (Threat == ThreatModelKind::LabelFlip)
    std::printf("note: box-domain cells are skipped — the flip "
                "class-probability transformer is sound only under the "
                "disjuncts domain\n");
  std::printf("\n");

  SweepConfig Config;
  Config.Depths = {1, 2};
  Config.Threat = Threat;
  Config.InstanceLimits.TimeoutSeconds = 2.0;
  Config.InstanceLimits.MaxCacheBytes = CacheBytes;
  Config.MaxPoisoning = Train.numRows();
  Config.Jobs = Jobs;
  Config.FrontierJobs = FrontierJobs;
  Config.SplitJobs = SplitJobs;
  Config.DeltaSlack = DeltaSlack;
  std::unique_ptr<CertCache> Cache;
  if (CacheEnabled)
    Cache = std::make_unique<CertCache>(Config.InstanceLimits);
  // The persistent tier (--cache-dir / ANTIDOTE_CACHE_DIR): a re-run of
  // the same sweep answers its deterministic cells from disk. Unusable
  // paths fail before hours of verification, not after.
  std::unique_ptr<DiskCertStore> DiskStore;
  if (!CacheDir.empty()) {
    DiskCertStore::OpenResult Opened = DiskCertStore::open(CacheDir);
    if (!Opened.ok()) {
      std::fprintf(stderr, "error: %s\n", Opened.Error.c_str());
      return 1;
    }
    DiskStore = std::move(Opened.Store);
  }
  TieredStore Tiered(Cache.get(), DiskStore.get());
  if (Cache || DiskStore)
    Config.Cache = &Tiered;
  SweepResult Result = runPoisoningSweep(Train, Test, VerifyRows, Config);

  for (unsigned Depth : Config.Depths) {
    std::printf("--- depth %u ---\n", Depth);
    TableWriter Table({"n", "box verified", "disjuncts verified",
                       "either (%)", "avg time (disj)"});
    for (uint32_t N : Result.attemptedPoisonings(Depth)) {
      unsigned BoxCount = 0, DisjCount = 0;
      double DisjSeconds = 0.0;
      unsigned DisjAttempted = 0;
      for (const SweepSeries &S : Result.Series) {
        if (S.Depth != Depth)
          continue;
        for (const SweepCell &Cell : S.Cells) {
          if (Cell.Poisoning != N)
            continue;
          if (S.DomainName == "box")
            BoxCount = Cell.Verified;
          if (S.DomainName == "disjuncts") {
            DisjCount = Cell.Verified;
            DisjSeconds = Cell.TotalSeconds;
            DisjAttempted = Cell.Attempted;
          }
        }
      }
      Table.addRow({std::to_string(N), std::to_string(BoxCount),
                    std::to_string(DisjCount),
                    formatPercent(Result.fractionVerified(Depth, N)),
                    formatSeconds(DisjAttempted
                                      ? DisjSeconds / DisjAttempted
                                      : 0.0)});
    }
    Table.print();
    std::printf("\n");
  }
  if (Cache)
    std::printf("certificate cache: %s\n",
                formatCacheStats(Cache->stats(), CacheBytes).c_str());
  if (DiskStore)
    std::printf("certificate disk store: %s\n",
                formatDiskStoreStats(DiskStore->stats()).c_str());
  return 0;
}
