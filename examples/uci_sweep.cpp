//===- examples/uci_sweep.cpp - Sweep a benchmark or CSV dataset --------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Runs the paper's §6.1 experimental protocol against one of the built-in
// benchmark datasets or a user-provided CSV file, and prints the
// fraction-verified curve (one row of the paper's Figure 6).
//
// Usage:
//   uci_sweep [--jobs N] [--frontier-jobs N] [--threat removal|flip]
//             [dataset-name]
//   uci_sweep [--jobs N] [--frontier-jobs N] --csv train.csv test.csv
//
// The serving knobs (cache, disk store, threat model, parallelism) come
// from the shared ServingOptions table — the same flags and ANTIDOTE_*
// env twins as antidote_cli. The process-role knobs (--listen,
// --replicate-from) parse but are refused: a sweep is a batch job, not
// a server.
//
//===----------------------------------------------------------------------===//

#include "antidote/Report.h"
#include "antidote/Sweep.h"
#include "data/Csv.h"
#include "data/Registry.h"
#include "serving/CertCache.h"
#include "serving/DiskCertStore.h"
#include "serving/ServingOptions.h"
#include "serving/TieredStore.h"
#include "support/Parse.h"

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

using namespace antidote;

static void printUsage(const char *Program) {
  std::printf("usage: %s [serving knobs...] [dataset-name]\n", Program);
  std::printf("       %s [serving knobs...] --csv <train.csv> "
              "<test.csv>\n\n",
              Program);
  ServingOptions::printHelp(stdout);
  std::printf("\n--listen and --replicate-from are refused: a sweep is "
              "a batch job,\nnot a server (use antidote_cli for "
              "those).\n");
  std::printf("built-in datasets:");
  for (const std::string &Name : benchmarkDatasetNames())
    std::printf(" %s", Name.c_str());
  std::printf("\n");
}

int main(int Argc, char **Argv) {
  Dataset Train, Test;
  std::vector<uint32_t> VerifyRows;
  std::string Name = "mammography";
  const char *Program = Argv[0];

  // The shared serving knobs (env twins first, then flags — see
  // serving/ServingOptions.h); the remaining arguments keep their
  // historical positional meaning.
  ServingOptions Serving;
  if (!Serving.parse(Argc, Argv))
    return 1;
  // A sweep has no server role: refuse the flags that would imply one
  // instead of silently ignoring them.
  if (Serving.Listen) {
    std::fprintf(stderr, "error: --listen is antidote_cli's job; a "
                         "sweep is a batch process\n");
    return 1;
  }
  if (Serving.Replicate) {
    std::fprintf(stderr, "error: --replicate-from is antidote_cli's "
                         "job; a sweep is a batch process\n");
    return 1;
  }

  if (Argc >= 2 && std::strcmp(Argv[1], "--help") == 0) {
    printUsage(Program);
    return 0;
  }
  if (Argc >= 2 && std::strcmp(Argv[1], "--csv") == 0) {
    if (Argc < 4) {
      printUsage(Program);
      return 1;
    }
    CsvLoadResult TrainResult = loadCsvDataset(Argv[2]);
    if (!TrainResult.succeeded()) {
      std::fprintf(stderr, "error: %s\n", TrainResult.Error.c_str());
      return 1;
    }
    CsvLoadResult TestResult =
        loadCsvDataset(Argv[3], TrainResult.Data->schema());
    if (!TestResult.succeeded()) {
      std::fprintf(stderr, "error: %s\n", TestResult.Error.c_str());
      return 1;
    }
    Train = std::move(*TrainResult.Data);
    Test = std::move(*TestResult.Data);
    for (uint32_t Row = 0; Row < Test.numRows(); ++Row)
      VerifyRows.push_back(Row);
    Name = Argv[2];
  } else {
    if (Argc >= 2) {
      if (Argv[1][0] == '-') {
        std::fprintf(stderr, "error: unknown flag '%s'\n", Argv[1]);
        return 1;
      }
      Name = Argv[1];
    }
    BenchmarkDataset Bench = loadBenchmarkDataset(Name, BenchScale::Scaled);
    Train = std::move(Bench.Split.Train);
    Test = std::move(Bench.Split.Test);
    VerifyRows = std::move(Bench.VerifyRows);
  }

  std::printf("=== Poisoning-robustness sweep: %s (threat %s) ===\n",
              Name.c_str(), threatModelName(Serving.Threat));
  std::printf("train %u rows x %u features, verifying %zu test inputs, "
              "%u job(s), %u frontier job(s), %u split job(s)\n",
              Train.numRows(), Train.numFeatures(), VerifyRows.size(),
              Serving.Jobs, Serving.FrontierJobs, Serving.SplitJobs);
  if (Serving.Threat == ThreatModelKind::LabelFlip)
    std::printf("note: box-domain cells are skipped — the flip "
                "class-probability transformer is sound only under the "
                "disjuncts domain\n");
  std::printf("\n");

  SweepConfig Config;
  Config.Depths = {1, 2};
  Config.Threat = Serving.Threat;
  Config.InstanceLimits.TimeoutSeconds = 2.0;
  Config.InstanceLimits.MaxCacheBytes = Serving.CacheBytes;
  Config.MaxPoisoning = Train.numRows();
  Config.Jobs = Serving.Jobs;
  Config.FrontierJobs = Serving.FrontierJobs;
  Config.SplitJobs = Serving.SplitJobs;
  Config.DeltaSlack = Serving.DeltaSlack;
  // The store composition, shared with antidote_cli: RAM LRU in front,
  // persistent tier behind (--cache-dir / ANTIDOTE_CACHE_DIR — a re-run
  // of the same sweep answers its deterministic cells from disk), both
  // behind the abstract CertificateStore facade. Unusable paths fail
  // before hours of verification, not after.
  std::unique_ptr<CertCache> Cache;
  if (Serving.CacheEnabled)
    Cache = std::make_unique<CertCache>(Serving.CacheBytes);
  std::unique_ptr<DiskCertStore> DiskStore;
  if (!Serving.CacheDir.empty()) {
    DiskCertStoreOptions DiskOptions;
    DiskOptions.RetentionBytes = Serving.RetentionBytes;
    DiskCertStore::OpenResult Opened =
        DiskCertStore::open(Serving.CacheDir, DiskOptions);
    if (!Opened.ok()) {
      std::fprintf(stderr, "error: %s\n", Opened.Error.c_str());
      return 1;
    }
    DiskStore = std::move(Opened.Store);
  }
  TieredStore Tiered(Cache.get(), DiskStore.get());
  if (Cache || DiskStore)
    Config.Cache = &Tiered;
  SweepResult Result = runPoisoningSweep(Train, Test, VerifyRows, Config);

  for (unsigned Depth : Config.Depths) {
    std::printf("--- depth %u ---\n", Depth);
    TableWriter Table({"n", "box verified", "disjuncts verified",
                       "either (%)", "avg time (disj)"});
    for (uint32_t N : Result.attemptedPoisonings(Depth)) {
      unsigned BoxCount = 0, DisjCount = 0;
      double DisjSeconds = 0.0;
      unsigned DisjAttempted = 0;
      for (const SweepSeries &S : Result.Series) {
        if (S.Depth != Depth)
          continue;
        for (const SweepCell &Cell : S.Cells) {
          if (Cell.Poisoning != N)
            continue;
          if (S.DomainName == "box")
            BoxCount = Cell.Verified;
          if (S.DomainName == "disjuncts") {
            DisjCount = Cell.Verified;
            DisjSeconds = Cell.TotalSeconds;
            DisjAttempted = Cell.Attempted;
          }
        }
      }
      Table.addRow({std::to_string(N), std::to_string(BoxCount),
                    std::to_string(DisjCount),
                    formatPercent(Result.fractionVerified(Depth, N)),
                    formatSeconds(DisjAttempted
                                      ? DisjSeconds / DisjAttempted
                                      : 0.0)});
    }
    Table.print();
    std::printf("\n");
  }
  if (Cache)
    std::printf("certificate cache: %s\n",
                Cache->stats().summary().c_str());
  if (DiskStore)
    std::printf("certificate disk store: %s\n",
                DiskStore->stats().summary().c_str());
  return 0;
}
