//===- examples/attack_vs_proof.cpp - Attacks vs. proofs ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The two sides of the data-poisoning question, on one screen. For a batch
// of test inputs and budgets this example runs
//   (a) Antidote's sound verifier (can PROVE no attack exists), and
//   (b) a greedy attack search in the style of the poisoning-attack
//       literature the paper cites (can PROVE an attack exists),
// and tabulates the three possible outcomes: proven robust, concretely
// attacked, or genuinely open. The two can never both succeed on the same
// instance — that would contradict soundness.
//
//===----------------------------------------------------------------------===//

#include "antidote/AttackSearch.h"
#include "antidote/Report.h"
#include "antidote/Verifier.h"
#include "data/Registry.h"

#include <cstdio>

using namespace antidote;

int main() {
  BenchmarkDataset Bench =
      loadBenchmarkDataset("mammography", BenchScale::Scaled);
  const Dataset &Train = Bench.Split.Train;
  const Dataset &Test = Bench.Split.Test;
  std::printf("=== Proof vs. attack on the mammography-like dataset ===\n");
  std::printf("train %u rows, depth-2 trees\n\n", Train.numRows());

  Verifier V(Train);
  SplitContext Ctx(Train);
  RowIndexList TrainRows = allRows(Train);
  VerifierConfig Query;
  Query.Depth = 2;
  Query.Domain = AbstractDomainKind::Disjuncts;
  Query.Limits.TimeoutSeconds = 3.0;

  unsigned NumProven = 0, NumAttacked = 0, NumOpen = 0;
  TableWriter Table({"test row", "n", "prediction", "verifier",
                     "attack search", "outcome"});
  unsigned Shown = 0;
  for (uint32_t Row : Bench.VerifyRows) {
    if (Shown >= 12)
      break;
    ++Shown;
    const float *X = Test.row(Row);
    for (uint32_t Budget : {2u, 16u}) {
      Certificate Cert = V.verify(X, Budget, Query);
      AttackResult Attack =
          findPoisoningAttack(Ctx, TrainRows, X, Budget, Query.Depth);
      const char *Outcome = "open";
      if (Cert.isRobust()) {
        Outcome = "PROVEN ROBUST";
        ++NumProven;
        if (Attack.Found) {
          std::fprintf(stderr,
                       "soundness violation: attack against a proof!\n");
          return 1;
        }
      } else if (Attack.Found) {
        Outcome = "ATTACKED";
        ++NumAttacked;
      } else {
        ++NumOpen;
      }
      Table.addRow({std::to_string(Row), std::to_string(Budget),
                    Train.schema().ClassNames[Cert.ConcretePrediction],
                    verdictKindName(Cert.Kind),
                    Attack.Found
                        ? "flip with " +
                              std::to_string(Attack.RemovedRows.size()) +
                              " removals"
                        : "no flip found",
                    Outcome});
    }
  }
  Table.print();
  std::printf("\nproven robust: %u   attacked: %u   open: %u\n", NumProven,
              NumAttacked, NumOpen);
  std::printf("(\"open\" instances are where sound verification and attack "
              "search both fail —\n the region the paper's incompleteness "
              "discussion describes.)\n");
  return 0;
}
