//===- examples/net_client.cpp - Binary-protocol serving client ---------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The command-line counterpart of `antidote_cli --listen`: connects to
// 127.0.0.1:PORT, pipelines a deterministic stream of requests through
// the length-prefixed protocol (serving/NetProtocol.h), and prints one
// line per response. The CI network smoke runs several of these
// concurrently against one server and greps the summary line.
//
//   net_client --port P --features F [--count K] [--n N]
//              [--deadline-ms D] [--tag-base T]
//
// Queries are synthesized deterministically from the tag (feature j of
// request i is ((i * 7 + j * 3) % 11)), so two clients with different
// --tag-base exercise distinct cache keys while reruns stay identical.
//
// Exit 0 = every request got a response (shed responses included — the
// protocol worked), 1 = connection/protocol failure, 2 = usage error.
//
//===----------------------------------------------------------------------===//

#include "serving/NetProtocol.h"
#include "support/Net.h"
#include "support/Parse.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>

#include <sys/socket.h>

using namespace antidote;

namespace {

struct ClientOptions {
  uint16_t Port = 0;
  unsigned Features = 0;
  uint64_t Count = 8;
  uint32_t Budget = 1;
  uint32_t DeadlineMillis = 0;
  uint64_t TagBase = 0;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: net_client --port P --features F [--count K] [--n N]\n"
      "                  [--deadline-ms D] [--tag-base T]\n"
      "  --port         server port (required, from the 'listening on'\n"
      "                 line of antidote_cli --listen)\n"
      "  --features     feature count of the server's training set\n"
      "  --count        requests to send (default 8)\n"
      "  --n            poisoning budget per request (default 1)\n"
      "  --deadline-ms  per-request deadline, milliseconds (0 = none)\n"
      "  --tag-base     first tag; also varies the synthesized queries\n");
}

bool parseArgs(int Argc, char **Argv, ClientOptions &Options) {
  bool HavePort = false, HaveFeatures = false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--help" || Arg == "-h")
      return false;
    const char *Value = I + 1 < Argc ? Argv[++I] : nullptr;
    if (!Value) {
      std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
      return false;
    }
    auto CountFlag = [&](uint64_t Max, auto &Out) {
      std::optional<uint64_t> Parsed = parseUnsignedArg(Value, Max);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: %s needs an unsigned integer <= %llu, got "
                     "'%s'\n",
                     Arg.c_str(), static_cast<unsigned long long>(Max),
                     Value);
        return false;
      }
      Out = static_cast<std::remove_reference_t<decltype(Out)>>(*Parsed);
      return true;
    };
    if (Arg == "--port") {
      if (!CountFlag(65535, Options.Port))
        return false;
      HavePort = true;
    } else if (Arg == "--features") {
      if (!CountFlag(UINT_MAX, Options.Features))
        return false;
      HaveFeatures = true;
    } else if (Arg == "--count") {
      if (!CountFlag(UINT64_MAX, Options.Count))
        return false;
    } else if (Arg == "--n") {
      if (!CountFlag(UINT32_MAX, Options.Budget))
        return false;
    } else if (Arg == "--deadline-ms") {
      if (!CountFlag(UINT32_MAX, Options.DeadlineMillis))
        return false;
    } else if (Arg == "--tag-base") {
      if (!CountFlag(UINT64_MAX, Options.TagBase))
        return false;
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  if (!HavePort || !HaveFeatures || Options.Features == 0) {
    std::fprintf(stderr, "error: --port and --features (>= 1) are "
                         "required\n");
    return false;
  }
  return true;
}

bool sendAll(int Fd, const std::string &Bytes) {
  size_t Pos = 0;
  while (Pos < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Pos, Bytes.size() - Pos,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Pos += static_cast<size_t>(N);
  }
  return true;
}

const char *statusName(const NetResponse &Response) {
  switch (Response.Status) {
  case NetStatus::Ok:
    return Response.Path == NetServePath::ShedProbe ? "ok/probe"
                                                    : "ok/verified";
  case NetStatus::Shed:
    return Response.ShedReason == NetShedReason::Paced ? "shed/paced"
                                                       : "shed/overload";
  case NetStatus::Error:
    return "error";
  }
  return "?";
}

} // namespace

int main(int Argc, char **Argv) {
  ClientOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }

  FdHandle Sock = connectTcpLoopback(Options.Port);
  if (!Sock.valid()) {
    std::fprintf(stderr, "error: connect 127.0.0.1:%u: %s\n", Options.Port,
                 std::strerror(errno));
    return 1;
  }

  // Pipeline everything, then collect: the server multiplexes, and this
  // is what the admission-control gates are exercised by.
  for (uint64_t I = 0; I < Options.Count; ++I) {
    NetRequest Request;
    Request.Tag = Options.TagBase + I;
    Request.PoisoningBudget = Options.Budget;
    Request.DeadlineMillis = Options.DeadlineMillis;
    Request.X.reserve(Options.Features);
    for (unsigned J = 0; J < Options.Features; ++J)
      Request.X.push_back(
          static_cast<float>((Request.Tag * 7 + J * 3) % 11));
    if (!sendAll(Sock.get(), encodeRequestFrame(Request))) {
      std::fprintf(stderr, "error: send: %s\n", std::strerror(errno));
      return 1;
    }
  }

  FrameReader In(NetResponseMagic);
  uint64_t Received = 0, Ok = 0, Shed = 0, Errors = 0;
  uint8_t Buf[4096];
  while (Received < Options.Count) {
    ssize_t N = ::recv(Sock.get(), Buf, sizeof(Buf), 0);
    if (N == 0) {
      std::fprintf(stderr, "error: server closed after %llu responses\n",
                   static_cast<unsigned long long>(Received));
      return 1;
    }
    if (N < 0) {
      if (errno == EINTR)
        continue;
      std::fprintf(stderr, "error: recv: %s\n", std::strerror(errno));
      return 1;
    }
    if (!In.feed(Buf, static_cast<size_t>(N))) {
      std::fprintf(stderr, "error: corrupt response stream\n");
      return 1;
    }
    while (std::optional<std::vector<uint8_t>> Payload = In.next()) {
      std::optional<NetResponse> Response =
          decodeResponsePayload(Payload->data(), Payload->size());
      if (!Response) {
        std::fprintf(stderr, "error: undecodable response payload\n");
        return 1;
      }
      ++Received;
      Ok += Response->Status == NetStatus::Ok;
      Shed += Response->Status == NetStatus::Shed;
      Errors += Response->Status == NetStatus::Error;
      if (Response->Status == NetStatus::Ok)
        std::printf("tag %llu: %s %s\n",
                    static_cast<unsigned long long>(Response->Tag),
                    statusName(*Response),
                    Response->Cert.summary().c_str());
      else
        std::printf("tag %llu: %s\n",
                    static_cast<unsigned long long>(Response->Tag),
                    statusName(*Response));
    }
  }

  std::printf("client: sent=%llu ok=%llu shed=%llu error=%llu\n",
              static_cast<unsigned long long>(Options.Count),
              static_cast<unsigned long long>(Ok),
              static_cast<unsigned long long>(Shed),
              static_cast<unsigned long long>(Errors));
  return 0;
}
