//===- examples/quickstart.cpp - The paper's running example ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Walks through the paper's §2 running example end to end: build the
// 13-element black/white dataset of Figure 2, learn the depth-1 tree, and
// prove that the classification of the input 5 cannot be changed by an
// attacker who contributed one malicious training element — contrasting
// the naive enumeration baseline, the box domain, and the disjunctive
// domain along the way.
//
//===----------------------------------------------------------------------===//

#include "antidote/Enumeration.h"
#include "antidote/Verifier.h"
#include "concrete/DecisionTree.h"

#include <cstdio>

using namespace antidote;

/// The Figure 2 training set: one real feature, class 0 = white, 1 = black.
static Dataset buildFigure2Dataset() {
  DatasetSchema Schema = DatasetSchema::uniform(1, FeatureKind::Real, 2);
  Schema.ClassNames = {"white", "black"};
  Dataset Data(Schema);
  struct Point {
    float X;
    unsigned Label;
  };
  static const Point Points[] = {
      {0, 1}, {1, 0}, {2, 0}, {3, 0},  {4, 1},  {7, 0},  {8, 0},
      {9, 0}, {10, 0}, {11, 1}, {12, 1}, {13, 1}, {14, 1},
  };
  for (const Point &P : Points)
    Data.addRow({P.X}, P.Label);
  return Data;
}

int main() {
  Dataset Train = buildFigure2Dataset();
  std::printf("=== Antidote quickstart: the PLDI'20 running example ===\n\n");
  std::printf("Training set: %u points, %u white / %u black\n",
              Train.numRows(), classCounts(Train, allRows(Train))[0],
              classCounts(Train, allRows(Train))[1]);

  // 1. Learn and show the depth-1 decision tree (Figure 2, bottom).
  SplitContext Ctx(Train);
  DecisionTree Tree = DecisionTree::learn(Ctx, allRows(Train), 1);
  std::printf("\nLearned depth-1 tree:\n%s\n", Tree.dump(Train).c_str());

  // 2. Classify the paper's query input x = 5.
  Verifier V(Train);
  float X = 5.0f;
  TraceResult Trace = V.trace(&X, 1);
  std::printf("DTrace(T, 5): class %u (%s) with probability %.3f\n",
              Trace.PredictedClass,
              Train.schema().ClassNames[Trace.PredictedClass].c_str(),
              Trace.ClassProbs[Trace.PredictedClass]);

  // 3. How big is the attack surface at n = 1 and n = 2?
  for (uint32_t N : {1u, 2u})
    std::printf("|Delta_%u(T)| = %llu possible training sets\n", N,
                static_cast<unsigned long long>(
                    perturbationSetCount(Train.numRows(), N)));

  // 4. Prove robustness at n = 1 with each domain.
  std::printf("\n--- Verifying robustness of x = 5 at n = 1 ---\n");
  for (AbstractDomainKind Domain :
       {AbstractDomainKind::Box, AbstractDomainKind::Disjuncts}) {
    VerifierConfig Config;
    Config.Depth = 1;
    Config.Domain = Domain;
    Certificate Cert = V.verify(&X, 1, Config);
    std::printf("%-18s %s\n", domainKindName(Domain),
                Cert.summary().c_str());
  }

  // 5. Cross-check with the naive enumeration baseline (feasible only
  //    because this example is tiny).
  EnumerationResult Oracle =
      verifyByEnumeration(V.context(), allRows(Train), &X, 1, 1);
  std::printf("%-18s %s after retraining on %llu sets\n", "enumeration",
              Oracle.Robust ? "robust" : "NOT robust",
              static_cast<unsigned long long>(Oracle.SetsChecked));

  // 6. Show the precision gap the paper's §2 discusses: at n = 2 the
  //    instance is still robust (enumeration says so), but the abstraction
  //    cannot prove it — sound, necessarily incomplete.
  std::printf("\n--- The incompleteness gap at n = 2 ---\n");
  VerifierConfig Config;
  Config.Depth = 1;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Certificate Cert2 = V.verify(&X, 2, Config);
  EnumerationResult Oracle2 =
      verifyByEnumeration(V.context(), allRows(Train), &X, 2, 1);
  std::printf("disjuncts:   %s\n", verdictKindName(Cert2.Kind));
  std::printf("enumeration: %s (%llu sets retrained)\n",
              Oracle2.Robust ? "robust" : "NOT robust",
              static_cast<unsigned long long>(Oracle2.SetsChecked));
  std::printf("\nAntidote is sound: whenever it says \"robust\" no attack "
              "exists;\nwhen it says \"unknown\" the truth may go either "
              "way.\n");
  return 0;
}
