//===- examples/mnist_certify.cpp - Certify MNIST-like digits -----------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// The Figure 3 scenario: pick handwritten-style digits ("1" vs "7"), learn
// a decision tree on an MNIST-1-7-like training set, and certify the
// largest poisoning budget for which each digit's classification provably
// cannot be changed. Renders each certified digit as ASCII art, like the
// paper's Figure 3 image.
//
//===----------------------------------------------------------------------===//

#include "antidote/Enumeration.h"
#include "antidote/Verifier.h"
#include "data/MnistLike.h"

#include <cstdio>

using namespace antidote;

int main() {
  // A reduced-scale MNIST-1-7-Binary workload (see DESIGN.md §3); the
  // certified budgets scale with the training-set size.
  MnistLikeConfig Config;
  Config.TrainRows = 600;
  Config.TestRows = 40;
  Config.Variant = MnistVariant::Binary;
  TrainTestSplit Split = makeMnistLike17(Config);
  std::printf("=== Certifying MNIST-1-7-like digits against poisoning ===\n");
  std::printf("training set: %u binary images (28x28), classes: one/seven\n\n",
              Split.Train.numRows());

  Verifier V(Split.Train);
  VerifierConfig Query;
  Query.Depth = 2;
  Query.Domain = AbstractDomainKind::Disjuncts;
  Query.Limits.TimeoutSeconds = 10.0;

  for (unsigned Row : {0u, 1u}) {
    const float *Digit = Split.Test.row(Row);
    unsigned Predicted = V.predict(Digit, Query.Depth);
    std::printf("test digit #%u (true label: %s, predicted: %s)\n", Row,
                Split.Test.label(Row) == 0 ? "one" : "seven",
                Predicted == 0 ? "one" : "seven");
    std::printf("%s\n", asciiArtDigit(Digit).c_str());

    // Doubling search for the largest certified budget, as in §6.1.
    uint32_t Certified = 0;
    uint32_t N = 1;
    while (N <= Split.Train.numRows()) {
      Certificate Cert = V.verify(Digit, N, Query);
      if (!Cert.isRobust())
        break;
      Certified = N;
      N *= 2;
    }
    // Tighten with a binary search between the last success and failure.
    uint32_t Lo = Certified, Hi = N;
    while (Certified > 0 && Hi - Lo > 1) {
      uint32_t Mid = Lo + (Hi - Lo) / 2;
      if (V.verify(Digit, Mid, Query).isRobust())
        Lo = Mid;
      else
        Hi = Mid;
    }
    Certified = std::max(Certified, Lo);

    if (Certified == 0) {
      std::printf("  could not certify any poisoning budget "
                  "(overapproximation too coarse here)\n\n");
      continue;
    }
    double Percent = 100.0 * Certified / Split.Train.numRows();
    std::printf("  PROVEN: the prediction is invariant for every training "
                "set in Delta_%u(T)\n", Certified);
    std::printf("  i.e. an attacker contributing up to %u elements "
                "(%.1f%% of the data) is powerless.\n", Certified, Percent);
    std::printf("  (that is %llu%s possible training sets)\n\n",
                static_cast<unsigned long long>(perturbationSetCount(
                    Split.Train.numRows(), Certified)),
                perturbationSetCount(Split.Train.numRows(), Certified) ==
                        UINT64_MAX
                    ? "+ (saturated)"
                    : "");
  }
  return 0;
}
