//===- examples/antidote_cli.cpp - Command-line verifier ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// A standalone command-line front end to the verifier, for certifying CSV
// datasets without writing any C++:
//
//   antidote_cli --train train.csv --query "5.1,3.5,1.4,0.2" --n 8
//                --depth 2 --domain disjuncts
//   antidote_cli --dataset mammography --row 3 --n 16 --threat flip
//   antidote_cli --dataset iris --all --n 4 --jobs 8
//   antidote_cli --dataset iris --serve --n 4 --cache-bytes 1048576
//
// --threat picks the poisoning model (removal | flip); every mode —
// single query, --all, --serve, caching, the disk store — works under
// either, through the same Verifier stack.
//
// --serve turns the process into a warm certificate server: queries
// stream in on stdin (one "v1,v2,..." feature vector per line), are
// batched through one long-lived Verifier + thread pool, and repeated
// queries short-circuit to the fingerprint-keyed certificate cache.
//
// Exit code 0 = robust proven (with --all/--serve: every query proven),
// 1 = not proven, 2 = usage/load error.
//
//===----------------------------------------------------------------------===//

#include "data/Csv.h"
#include "data/Registry.h"
#include "serving/CertServer.h"
#include "serving/DiskCertStore.h"
#include "serving/NetServer.h"
#include "serving/TieredStore.h"
#include "support/Parse.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>

using namespace antidote;

namespace {

/// Parsed command line.
struct CliOptions {
  std::string TrainCsv;
  std::string DatasetName;
  std::string QueryValues; ///< Comma-separated feature vector.
  int TestRow = -1;        ///< Row of the registry test split to query.
  bool AllRows = false;    ///< Verify every row of the test split.
  bool Serve = false;      ///< Serve stdin queries through a CertServer.
  bool Listen = false;     ///< Serve the binary protocol over TCP.
  uint16_t ListenPort = 0; ///< 0 = kernel-assigned (printed on startup).
  size_t MaxClients = 64;  ///< Concurrent-connection cap; 0 = unbounded.
  size_t ShedDepth = 0;    ///< Queue depth that triggers shedding; 0 = never.
  double ClientRate = 0.0; ///< Per-client admits/second; 0 = unpaced.
  double ClientBurst = 8.0; ///< Per-client token-bucket capacity.
  uint32_t Budget = 1;
  unsigned Depth = 2;
  AbstractDomainKind Domain = AbstractDomainKind::Disjuncts;
  size_t DisjunctCap = 64;
  double TimeoutSeconds = 60.0;
  unsigned Jobs = 1; ///< Worker threads for --all/--serve; 0 = all cores.
  unsigned FrontierJobs = 1; ///< Executors within one DTrace# frontier.
  unsigned SplitJobs = 1; ///< Executors within one bestSplit# scoring pass.
  uint64_t CacheBytes = 0;   ///< Certificate-cache budget; 0 = unbounded.
  bool CacheEnabled = false; ///< --cache-bytes/env seen (or --serve).
  std::string CacheDir;        ///< Persistent certificate store directory.
  bool DeltaSlack = true; ///< Serve from a lineage parent's certificates.
  ThreatModelKind Threat = ThreatModelKind::Removal;
};

void printUsage() {
  std::printf(
      "usage: antidote_cli (--train FILE.csv | --dataset NAME)\n"
      "                    (--query \"v1,v2,...\" | --row K | --all |"
      " --serve |\n"
      "                     --listen PORT)\n"
      "                    [--n N] [--depth D] [--threat removal|flip]\n"
      "                    [--domain box|disjuncts|capped] [--cap K]\n"
      "                    [--timeout SECONDS] [--jobs N]\n"
      "                    [--frontier-jobs N] [--split-jobs N]\n"
      "                    [--cache-bytes B] [--cache-dir DIR]\n"
      "                    [--delta-slack 0|1]\n"
      "                    [--max-clients N] [--shed-depth N]\n"
      "                    [--client-rate R] [--client-burst B]\n\n"
      "  --train    training set CSV (features..., integer label)\n"
      "  --dataset  built-in benchmark:");
  for (const std::string &Name : benchmarkDatasetNames())
    std::printf(" %s", Name.c_str());
  std::printf(
      "\n"
      "  --query    feature vector of the input to certify\n"
      "  --row      use row K of the benchmark's test split\n"
      "  --all      certify every row of the test split\n"
      "  --serve    warm certificate server: read one query per line\n"
      "             (\"v1,v2,...\") from stdin, batch them through one\n"
      "             long-lived Verifier, cache repeated queries\n"
      "  --listen   network certificate server: bind 127.0.0.1:PORT\n"
      "             (0 = kernel-assigned, printed on startup) and speak\n"
      "             the length-prefixed binary protocol (see\n"
      "             examples/net_client.cpp); each request carries its\n"
      "             own poisoning budget and optional deadline; SIGINT/\n"
      "             SIGTERM shut down cleanly and print the net: stats\n"
      "\n"
      "knobs (flag beats env-var twin beats default; malformed values\n"
      "in either error out):\n"
      "  flag             env twin                default\n"
      "  --n              -                       1    poisoning budget\n"
      "             (at most the training-set size)\n"
      "  --depth          -                       2    decision-tree "
      "depth\n"
      "  --threat         ANTIDOTE_THREAT   removal    poisoning model: "
      "'removal'\n"
      "             (attacker added up to n rows) or 'flip' (attacker "
      "relabeled\n"
      "             up to n rows; disjuncts domain only)\n"
      "  --domain         -               disjuncts    abstract domain\n"
      "  --cap            -                      64    disjunct cap "
      "(capped domain only)\n"
      "  --timeout        -                      60    per-query "
      "wall-clock budget, seconds (0 = none)\n"
      "  --jobs           ANTIDOTE_JOBS           1    worker threads "
      "for --all/--serve\n"
      "             (0 = all cores)\n"
      "  --frontier-jobs  ANTIDOTE_FRONTIER_JOBS  1    executors inside "
      "one query's DTrace#\n"
      "             frontier (0 = all cores); certificates identical "
      "for every value\n"
      "  --split-jobs     ANTIDOTE_SPLIT_JOBS     1    executors inside "
      "one bestSplit# candidate\n"
      "             scoring pass (0 = all cores); shares the frontier "
      "pool,\n"
      "             certificates identical for every value\n"
      "  --cache-bytes    ANTIDOTE_CACHE_BYTES  off    certificate-cache "
      "byte budget\n"
      "             (0 = unbounded; always on under --serve, off "
      "otherwise\n"
      "             unless given; cached certificates are identical to "
      "fresh ones)\n"
      "  --cache-dir      ANTIDOTE_CACHE_DIR    off    persistent "
      "certificate store\n"
      "             directory (created if missing; two-tier: RAM LRU in "
      "front,\n"
      "             disk behind; certificates survive restarts and may "
      "be shared\n"
      "             by several processes; unusable paths error out)\n"
      "  --delta-slack    ANTIDOTE_DELTA_SLACK    1    delta-tolerant "
      "serving:\n"
      "             answer from a lineage parent's certificate when the "
      "store\n"
      "             misses under this dataset's own fingerprint (sound "
      "for\n"
      "             pure-removal deltas; 0 = exact/range matches only, "
      "for A/B runs)\n"
      "  --listen         ANTIDOTE_LISTEN       off    TCP port to "
      "serve on\n"
      "             (0 = kernel-assigned; presence of either turns "
      "listen mode on)\n"
      "  --max-clients    ANTIDOTE_MAX_CLIENTS   64    concurrent "
      "connections\n"
      "             (0 = unbounded; extra accepts are closed "
      "immediately)\n"
      "  --shed-depth     ANTIDOTE_SHED_DEPTH     0    verification-"
      "queue depth\n"
      "             at which new work is shed (store hits still "
      "answered;\n"
      "             0 = never shed)\n"
      "  --client-rate    ANTIDOTE_CLIENT_RATE    0    per-client "
      "admitted\n"
      "             requests/second, token bucket (0 = unpaced)\n"
      "  --client-burst   ANTIDOTE_CLIENT_BURST   8    token-bucket "
      "capacity:\n"
      "             requests one client may burst before pacing bites\n");
}

/// Applies \p Name as the default for \p Out when the flag was absent.
/// Malformed env values are as fatal as malformed flags (the shared
/// report in support/Parse prints the error).
template <typename T>
bool applyUnsignedEnv(const char *Name, const char *ZeroMeaning,
                      uint64_t Max, T &Out, bool *WasSet = nullptr) {
  EnvNumber Env = readUnsignedEnvReporting(Name, ZeroMeaning, Max);
  if (Env.Status == EnvNumberStatus::Malformed)
    return false;
  if (Env.Status == EnvNumberStatus::Ok) {
    Out = static_cast<T>(Env.Value);
    if (WasSet)
      *WasSet = true;
  }
  return true;
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  // Environment twins first, so explicit flags override them below.
  if (!applyUnsignedEnv("ANTIDOTE_JOBS", "all cores", UINT_MAX,
                        Options.Jobs) ||
      !applyUnsignedEnv("ANTIDOTE_FRONTIER_JOBS", "all cores", UINT_MAX,
                        Options.FrontierJobs) ||
      !applyUnsignedEnv("ANTIDOTE_SPLIT_JOBS", "all cores", UINT_MAX,
                        Options.SplitJobs) ||
      !applyUnsignedEnv("ANTIDOTE_CACHE_BYTES", "unbounded", UINT64_MAX,
                        Options.CacheBytes, &Options.CacheEnabled) ||
      !applyUnsignedEnv("ANTIDOTE_DELTA_SLACK", "disabled", 1,
                        Options.DeltaSlack) ||
      !applyUnsignedEnv("ANTIDOTE_LISTEN", "kernel-assigned port", 65535,
                        Options.ListenPort, &Options.Listen) ||
      !applyUnsignedEnv("ANTIDOTE_MAX_CLIENTS", "unbounded", SIZE_MAX,
                        Options.MaxClients) ||
      !applyUnsignedEnv("ANTIDOTE_SHED_DEPTH", "never shed", SIZE_MAX,
                        Options.ShedDepth))
    return false;
  // Double-valued twins (no unsigned helper fits): same rule, malformed
  // values are fatal.
  auto DoubleEnv = [](const char *Name, double Min, double &Out) {
    std::optional<std::string> Text = readStringEnv(Name);
    if (!Text)
      return true;
    std::optional<double> Parsed = parseDoubleArg(Text->c_str());
    if (!Parsed || *Parsed < Min) {
      std::fprintf(stderr,
                   "error: %s needs a finite number >= %g, got '%s'\n",
                   Name, Min, Text->c_str());
      return false;
    }
    Out = *Parsed;
    return true;
  };
  if (!DoubleEnv("ANTIDOTE_CLIENT_RATE", 0.0, Options.ClientRate) ||
      !DoubleEnv("ANTIDOTE_CLIENT_BURST", 1.0, Options.ClientBurst))
    return false;
  if (std::optional<std::string> Dir = readStringEnv("ANTIDOTE_CACHE_DIR")) {
    Options.CacheDir = *Dir;
    Options.CacheEnabled = true;
  }
  if (std::optional<std::string> Threat = readStringEnv("ANTIDOTE_THREAT")) {
    std::optional<ThreatModelKind> Parsed = parseThreatModelName(*Threat);
    if (!Parsed) {
      std::fprintf(stderr,
                   "error: ANTIDOTE_THREAT must be 'removal' or 'flip', "
                   "got '%s'\n",
                   Threat->c_str());
      return false;
    }
    Options.Threat = *Parsed;
  }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--help" || Arg == "-h")
      return false;
    const char *Value = nullptr;
    if (Arg == "--all") {
      Options.AllRows = true;
      continue;
    }
    if (Arg == "--serve") {
      Options.Serve = true;
      continue;
    }
    if (!(Value = Next())) {
      std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
      return false;
    }
    // Every numeric flag parses checked: garbage must error out loudly,
    // not silently become 0 (bare atoi) or wrap through an unsigned cast.
    auto CountFlag = [&](uint64_t Max, auto &Out) {
      std::optional<uint64_t> Parsed = parseUnsignedArg(Value, Max);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: %s needs an unsigned integer <= %llu, got "
                     "'%s'\n",
                     Arg.c_str(), static_cast<unsigned long long>(Max),
                     Value);
        return false;
      }
      Out = static_cast<std::remove_reference_t<decltype(Out)>>(*Parsed);
      return true;
    };
    if (Arg == "--train")
      Options.TrainCsv = Value;
    else if (Arg == "--dataset")
      Options.DatasetName = Value;
    else if (Arg == "--query")
      Options.QueryValues = Value;
    else if (Arg == "--row") {
      if (!CountFlag(INT_MAX, Options.TestRow))
        return false;
    } else if (Arg == "--n") {
      if (!CountFlag(UINT32_MAX, Options.Budget))
        return false;
    } else if (Arg == "--depth") {
      if (!CountFlag(UINT_MAX, Options.Depth))
        return false;
    } else if (Arg == "--cap") {
      if (!CountFlag(SIZE_MAX, Options.DisjunctCap))
        return false;
    } else if (Arg == "--timeout") {
      std::optional<double> Parsed = parseDoubleArg(Value);
      if (!Parsed || *Parsed < 0.0) {
        std::fprintf(stderr,
                     "error: --timeout needs a finite number of seconds "
                     ">= 0, got '%s'\n",
                     Value);
        return false;
      }
      Options.TimeoutSeconds = *Parsed;
    } else if (Arg == "--jobs" || Arg == "--frontier-jobs" ||
               Arg == "--split-jobs") {
      unsigned *Out = Arg == "--jobs" ? &Options.Jobs
                      : Arg == "--frontier-jobs" ? &Options.FrontierJobs
                                                 : &Options.SplitJobs;
      if (!CountFlag(UINT_MAX, *Out))
        return false;
    } else if (Arg == "--cache-bytes") {
      if (!CountFlag(UINT64_MAX, Options.CacheBytes))
        return false;
      Options.CacheEnabled = true;
    } else if (Arg == "--cache-dir") {
      Options.CacheDir = Value;
      Options.CacheEnabled = true;
    } else if (Arg == "--delta-slack") {
      if (!CountFlag(1, Options.DeltaSlack))
        return false;
    } else if (Arg == "--listen") {
      if (!CountFlag(65535, Options.ListenPort))
        return false;
      Options.Listen = true;
    } else if (Arg == "--max-clients") {
      if (!CountFlag(SIZE_MAX, Options.MaxClients))
        return false;
    } else if (Arg == "--shed-depth") {
      if (!CountFlag(SIZE_MAX, Options.ShedDepth))
        return false;
    } else if (Arg == "--client-rate" || Arg == "--client-burst") {
      bool Burst = Arg == "--client-burst";
      std::optional<double> Parsed = parseDoubleArg(Value);
      if (!Parsed || *Parsed < (Burst ? 1.0 : 0.0)) {
        std::fprintf(stderr,
                     "error: %s needs a finite number >= %g, got '%s'\n",
                     Arg.c_str(), Burst ? 1.0 : 0.0, Value);
        return false;
      }
      (Burst ? Options.ClientBurst : Options.ClientRate) = *Parsed;
    } else if (Arg == "--threat") {
      std::optional<ThreatModelKind> Parsed = parseThreatModelName(Value);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: --threat must be 'removal' or 'flip', got "
                     "'%s'\n",
                     Value);
        return false;
      }
      Options.Threat = *Parsed;
    } else if (Arg == "--domain") {
      if (std::strcmp(Value, "box") == 0)
        Options.Domain = AbstractDomainKind::Box;
      else if (std::strcmp(Value, "disjuncts") == 0)
        Options.Domain = AbstractDomainKind::Disjuncts;
      else if (std::strcmp(Value, "capped") == 0)
        Options.Domain = AbstractDomainKind::DisjunctsCapped;
      else {
        std::fprintf(stderr, "error: unknown domain '%s'\n", Value);
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  bool HaveData = !Options.TrainCsv.empty() ^ !Options.DatasetName.empty();
  bool HaveQuery = !Options.QueryValues.empty() || Options.TestRow >= 0 ||
                   Options.AllRows || Options.Serve || Options.Listen;
  if (!HaveData || !HaveQuery) {
    std::fprintf(stderr, "error: need one data source and one query "
                         "source\n");
    return false;
  }
  if (Options.AllRows && Options.DatasetName.empty()) {
    std::fprintf(stderr, "error: --all needs --dataset\n");
    return false;
  }
  if (Options.Serve && (Options.AllRows || !Options.QueryValues.empty() ||
                        Options.TestRow >= 0 || Options.Listen)) {
    std::fprintf(stderr,
                 "error: --serve takes queries from stdin only\n");
    return false;
  }
  if (Options.Listen && (Options.AllRows || !Options.QueryValues.empty() ||
                         Options.TestRow >= 0)) {
    std::fprintf(stderr,
                 "error: --listen takes queries from the socket only\n");
    return false;
  }
  if (!threatModel(Options.Threat).supportsDomain(Options.Domain)) {
    std::fprintf(stderr,
                 "error: the %s threat model supports only the disjuncts "
                 "domain (its class-probability transformer is unsound "
                 "under box joins)\n",
                 threatModelName(Options.Threat));
    return false;
  }
  return true;
}

/// One line for the serve-mode transcript and the --all cache summary.
void printCacheStats(const CertCacheStats &Stats, uint64_t Budget) {
  std::printf("cache: %s\n", formatCacheStats(Stats, Budget).c_str());
}

/// The disk tier's line, printed whenever --cache-dir is active. The CI
/// persistence smoke greps this for a deterministic warm-restart hit.
void printDiskStats(const DiskCertStore &Store) {
  std::printf("disk: %s\n", formatDiskStoreStats(Store.stats()).c_str());
}

/// Parses "v1,v2,..." into floats; returns false on malformed input.
bool parseQuery(const std::string &Text, unsigned NumFeatures,
                std::vector<float> &Query) {
  const char *Cursor = Text.c_str();
  while (*Cursor) {
    char *End = nullptr;
    float V = std::strtof(Cursor, &End);
    if (End == Cursor)
      return false;
    Query.push_back(V);
    Cursor = End;
    if (*Cursor == ',')
      ++Cursor;
  }
  return Query.size() == NumFeatures;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }

  // Resolve the training set and query vector.
  Dataset Train;
  Dataset Test;
  if (!Options.TrainCsv.empty()) {
    CsvLoadResult Loaded = loadCsvDataset(Options.TrainCsv);
    if (!Loaded.succeeded()) {
      std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
      return 2;
    }
    Train = std::move(*Loaded.Data);
  } else {
    BenchmarkDataset Bench =
        loadBenchmarkDataset(Options.DatasetName, benchScaleFromEnv());
    Train = std::move(Bench.Split.Train);
    Test = std::move(Bench.Split.Test);
  }
  if (Options.Budget > Train.numRows()) {
    std::fprintf(stderr,
                 "error: --n %u exceeds the %u-row training set (the "
                 "attacker cannot have contributed more rows than exist)\n",
                 Options.Budget, Train.numRows());
    return 2;
  }
  std::vector<float> Query;
  if (Options.AllRows || Options.Serve || Options.Listen) {
    // --all resolves its inputs below; --serve reads them from stdin,
    // --listen from the socket.
  } else if (!Options.QueryValues.empty()) {
    if (!parseQuery(Options.QueryValues, Train.numFeatures(), Query)) {
      std::fprintf(stderr, "error: query must have %u numeric values\n",
                   Train.numFeatures());
      return 2;
    }
  } else {
    if (Test.numRows() == 0 ||
        Options.TestRow >= static_cast<int>(Test.numRows())) {
      std::fprintf(stderr, "error: --row requires a --dataset test split "
                           "with that many rows\n");
      return 2;
    }
    const float *Row = Test.row(static_cast<unsigned>(Options.TestRow));
    Query.assign(Row, Row + Train.numFeatures());
  }

  std::printf("training set: %u rows x %u features, %u classes\n",
              Train.numRows(), Train.numFeatures(), Train.numClasses());
  std::printf("threat model: %s (up to %u %s)\n",
              threatModelName(Options.Threat), Options.Budget,
              Options.Threat == ThreatModelKind::LabelFlip
                  ? "relabeled training rows"
                  : "attacker-contributed rows removed");

  // The persistent tier (--cache-dir / ANTIDOTE_CACHE_DIR): opened once,
  // shared by whichever mode runs below. An unusable directory is a
  // usage error — fail loudly now, not after hours of verification.
  std::unique_ptr<DiskCertStore> DiskStore;
  if (!Options.CacheDir.empty()) {
    DiskCertStore::OpenResult Opened = DiskCertStore::open(Options.CacheDir);
    if (!Opened.ok()) {
      std::fprintf(stderr, "error: %s\n", Opened.Error.c_str());
      return 2;
    }
    DiskStore = std::move(Opened.Store);
  }

  if (Options.Listen) {
    // Block the shutdown signals *before* the server threads spawn so
    // every thread inherits the mask and sigwait below is the only
    // consumer — the one portable way to both run an epoll loop and
    // shut down cleanly on SIGINT/SIGTERM.
    sigset_t ShutdownSigs;
    sigemptyset(&ShutdownSigs);
    sigaddset(&ShutdownSigs, SIGINT);
    sigaddset(&ShutdownSigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &ShutdownSigs, nullptr);

    CertServerConfig ServerConfig;
    ServerConfig.Query.Depth = Options.Depth;
    ServerConfig.Query.Domain = Options.Domain;
    ServerConfig.Query.Threat = Options.Threat;
    ServerConfig.Query.DisjunctCap = Options.DisjunctCap;
    ServerConfig.Query.Limits.TimeoutSeconds = Options.TimeoutSeconds;
    ServerConfig.Query.Limits.MaxCacheBytes = Options.CacheBytes;
    ServerConfig.Query.FrontierJobs = Options.FrontierJobs;
    ServerConfig.Query.SplitJobs = Options.SplitJobs;
    ServerConfig.Query.DeltaSlack = Options.DeltaSlack;
    ServerConfig.Jobs = Options.Jobs;
    ServerConfig.Backing = DiskStore.get();
    CertServer Server(Train, ServerConfig);

    NetServerConfig NetConfig;
    NetConfig.Port = Options.ListenPort;
    NetConfig.MaxClients = Options.MaxClients;
    NetConfig.ShedDepth = Options.ShedDepth;
    NetConfig.ClientRate = Options.ClientRate;
    NetConfig.ClientBurst = Options.ClientBurst;
    NetServer Net(Server, NetConfig);
    std::string Error;
    if (!Net.start(Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    // The CI smoke (and any script) learns the kernel-assigned port
    // from this line; keep its shape stable.
    std::printf("listening on 127.0.0.1:%u (dataset %s, threat %s, %u "
                "features)\n",
                Net.port(), Server.verifier().fingerprint().hex().c_str(),
                threatModelName(Options.Threat), Train.numFeatures());
    std::fflush(stdout);

    int Sig = 0;
    sigwait(&ShutdownSigs, &Sig);
    std::printf("signal %d: shutting down\n", Sig);
    Net.stop();
    NetServerStats Stats = Net.stats();
    std::printf("net: accepted=%llu refused=%llu framing=%llu "
                "requests=%llu verified=%llu probe_hits=%llu "
                "shed_overload=%llu shed_paced=%llu bad_requests=%llu "
                "cancelled=%llu\n",
                static_cast<unsigned long long>(Stats.Accepted),
                static_cast<unsigned long long>(Stats.RefusedClients),
                static_cast<unsigned long long>(Stats.FramingErrors),
                static_cast<unsigned long long>(Stats.Requests),
                static_cast<unsigned long long>(Stats.Verified),
                static_cast<unsigned long long>(Stats.ProbeHits),
                static_cast<unsigned long long>(Stats.ShedOverload),
                static_cast<unsigned long long>(Stats.ShedPaced),
                static_cast<unsigned long long>(Stats.BadArity),
                static_cast<unsigned long long>(Stats.Cancelled));
    printCacheStats(Server.cacheStats(), Options.CacheBytes);
    if (DiskStore)
      printDiskStats(*DiskStore);
    return 0;
  }

  if (Options.Serve) {
    CertServerConfig ServerConfig;
    ServerConfig.Query.Depth = Options.Depth;
    ServerConfig.Query.Domain = Options.Domain;
    ServerConfig.Query.Threat = Options.Threat;
    ServerConfig.Query.DisjunctCap = Options.DisjunctCap;
    ServerConfig.Query.Limits.TimeoutSeconds = Options.TimeoutSeconds;
    ServerConfig.Query.Limits.MaxCacheBytes = Options.CacheBytes;
    ServerConfig.Query.FrontierJobs = Options.FrontierJobs;
    ServerConfig.Query.SplitJobs = Options.SplitJobs;
    ServerConfig.Query.DeltaSlack = Options.DeltaSlack;
    ServerConfig.Jobs = Options.Jobs;
    ServerConfig.Backing = DiskStore.get();
    CertServer Server(Train, ServerConfig);
    std::printf("serving (dataset %s, threat %s): one query per line on "
                "stdin (%u comma-separated features), n=%u\n",
                Server.verifier().fingerprint().hex().c_str(),
                threatModelName(Options.Threat), Train.numFeatures(),
                Options.Budget);

    // Responses stream back in submission order as they complete — an
    // interactive client sees answers while it is still typing queries,
    // and a long-running feed cannot pile up unbounded futures (past the
    // window, reading blocks on the oldest in-flight answer — natural
    // backpressure against a producer outpacing verification).
    std::deque<std::future<Certificate>> Pending;
    size_t Submitted = 0, Printed = 0;
    unsigned Robust = 0;
    auto PrintFront = [&] {
      Certificate Cert = Pending.front().get();
      Pending.pop_front();
      Robust += Cert.isRobust();
      std::printf("query %4zu: %s\n", Printed++, Cert.summary().c_str());
      std::fflush(stdout);
    };
    auto FlushReady = [&] {
      while (!Pending.empty() &&
             Pending.front().wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready)
        PrintFront();
    };
    const size_t MaxPending = 1024;

    std::string Line;
    size_t LineNo = 0;
    while (std::getline(std::cin, Line)) {
      ++LineNo;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty() || Line[0] == '#')
        continue;
      std::vector<float> X;
      if (!parseQuery(Line, Train.numFeatures(), X)) {
        std::fprintf(stderr,
                     "error: line %zu: query must have %u numeric "
                     "values\n",
                     LineNo, Train.numFeatures());
        // Don't let the destructor's clean drain fully verify a deep
        // backlog after the user already saw the error — cancel it.
        Server.abort();
        return 2;
      }
      Pending.push_back(Server.submit(std::move(X), Options.Budget));
      ++Submitted;
      FlushReady();
      while (Pending.size() >= MaxPending)
        PrintFront();
    }
    while (!Pending.empty())
      PrintFront();

    std::printf("served %zu queries (threat %s): %u robust\n", Submitted,
                threatModelName(Options.Threat), Robust);
    printCacheStats(Server.cacheStats(), Options.CacheBytes);
    if (DiskStore)
      printDiskStats(*DiskStore);
    return Robust == Submitted ? 0 : 1;
  }

  Verifier V(Train);
  VerifierConfig Config;
  Config.Depth = Options.Depth;
  Config.Domain = Options.Domain;
  Config.Threat = Options.Threat;
  Config.DisjunctCap = Options.DisjunctCap;
  Config.Limits.TimeoutSeconds = Options.TimeoutSeconds;
  Config.Limits.MaxCacheBytes = Options.CacheBytes;
  Config.FrontierJobs = Options.FrontierJobs;
  Config.SplitJobs = Options.SplitJobs;
  Config.DeltaSlack = Options.DeltaSlack;
  // Optional certificate store (--cache-bytes / --cache-dir and their
  // env twins): a RAM-only cache is pointless for a one-shot batch with
  // distinct rows but demos the hit path; the two-tier composition with
  // a --cache-dir makes even one-shot runs remember across processes —
  // re-running the same query answers from disk.
  std::unique_ptr<CertCache> Cache;
  if (Options.CacheEnabled)
    Cache = std::make_unique<CertCache>(Config.Limits);
  TieredStore Tiered(Cache.get(), DiskStore.get());
  if (Cache || DiskStore)
    Config.Cache = &Tiered;
  // One pool shared by every query of the process and by both in-query
  // fan-out levels (it outlives the verify/verifyBatch calls below);
  // null when --frontier-jobs and --split-jobs are both 1.
  std::unique_ptr<ThreadPool> FrontierPool = makeVerificationPool(
      sharedFanoutJobs(Options.FrontierJobs, Options.SplitJobs));
  Config.FrontierPool = FrontierPool.get();

  if (Options.AllRows) {
    std::vector<const float *> Inputs;
    for (uint32_t Row = 0; Row < Test.numRows(); ++Row)
      Inputs.push_back(Test.row(Row));
    std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Options.Jobs);
    std::printf("verifying %zu test rows on %u thread(s), %u shared "
                "frontier/split executor(s) per query\n",
                Inputs.size(), Pool ? Pool->size() + 1 : 1,
                FrontierPool ? FrontierPool->size() + 1 : 1);
    std::vector<Certificate> Certs =
        V.verifyBatch(Inputs, Options.Budget, Config, Pool.get());
    unsigned Robust = 0;
    for (uint32_t Row = 0; Row < Certs.size(); ++Row) {
      Robust += Certs[Row].isRobust();
      std::printf("row %4u: %s\n", Row, Certs[Row].summary().c_str());
    }
    std::printf("robust (threat %s): %u / %zu\n",
                threatModelName(Options.Threat), Robust, Certs.size());
    if (Cache)
      printCacheStats(Cache->stats(), Options.CacheBytes);
    if (DiskStore)
      printDiskStats(*DiskStore);
    return Robust == Certs.size() ? 0 : 1;
  }

  Certificate Cert = V.verify(Query.data(), Options.Budget, Config);
  std::printf("prediction: class %u\n", Cert.ConcretePrediction);
  std::printf("verdict: %s\n", Cert.summary().c_str());
  if (DiskStore)
    printDiskStats(*DiskStore);
  return Cert.isRobust() ? 0 : 1;
}
