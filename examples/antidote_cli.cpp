//===- examples/antidote_cli.cpp - Command-line verifier ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// A standalone command-line front end to the verifier, for certifying CSV
// datasets without writing any C++:
//
//   antidote_cli --train train.csv --query "5.1,3.5,1.4,0.2" --n 8
//                --depth 2 --domain disjuncts
//   antidote_cli --dataset mammography --row 3 --n 16 --flip
//   antidote_cli --dataset iris --all --n 4 --jobs 8
//
// Exit code 0 = robust proven (with --all: every row proven), 1 = not
// proven, 2 = usage/load error.
//
//===----------------------------------------------------------------------===//

#include "abstract/LabelFlip.h"
#include "antidote/Verifier.h"
#include "data/Csv.h"
#include "data/Registry.h"
#include "support/Parse.h"

#include <algorithm>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>

using namespace antidote;

namespace {

/// Parsed command line.
struct CliOptions {
  std::string TrainCsv;
  std::string DatasetName;
  std::string QueryValues; ///< Comma-separated feature vector.
  int TestRow = -1;        ///< Row of the registry test split to query.
  bool AllRows = false;    ///< Verify every row of the test split.
  uint32_t Budget = 1;
  unsigned Depth = 2;
  AbstractDomainKind Domain = AbstractDomainKind::Disjuncts;
  size_t DisjunctCap = 64;
  double TimeoutSeconds = 60.0;
  unsigned Jobs = 1; ///< Worker threads for --all; 0 = hardware threads.
  unsigned FrontierJobs = 1; ///< Executors within one DTrace# frontier.
  unsigned SplitJobs = 1; ///< Executors within one bestSplit# scoring pass.
  bool FlipModel = false;
};

void printUsage() {
  std::printf(
      "usage: antidote_cli (--train FILE.csv | --dataset NAME)\n"
      "                    (--query \"v1,v2,...\" | --row K | --all)\n"
      "                    [--n N] [--depth D]\n"
      "                    [--domain box|disjuncts|capped] [--cap K]\n"
      "                    [--timeout SECONDS] [--jobs N]\n"
      "                    [--frontier-jobs N] [--split-jobs N] [--flip]\n\n"
      "  --train    training set CSV (features..., integer label)\n"
      "  --dataset  built-in benchmark:");
  for (const std::string &Name : benchmarkDatasetNames())
    std::printf(" %s", Name.c_str());
  std::printf("\n"
              "  --query    feature vector of the input to certify\n"
              "  --row      use row K of the benchmark's test split\n"
              "  --all      certify every row of the test split\n"
              "  --n        poisoning budget (default 1; at most the\n"
              "             training-set size)\n"
              "  --jobs     worker threads for --all (0 = all cores)\n"
              "  --frontier-jobs  executors inside one query's DTrace#\n"
              "             frontier (0 = all cores); certificates are\n"
              "             identical for every value\n"
              "  --split-jobs  executors inside one bestSplit# candidate\n"
              "             scoring pass (0 = all cores); shares the\n"
              "             frontier pool, certificates identical for\n"
              "             every value\n"
              "  --flip     certify against label flips instead of row\n"
              "             insertions/removals\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--help" || Arg == "-h")
      return false;
    const char *Value = nullptr;
    if (Arg == "--flip") {
      Options.FlipModel = true;
      continue;
    }
    if (Arg == "--all") {
      Options.AllRows = true;
      continue;
    }
    if (!(Value = Next())) {
      std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
      return false;
    }
    // Every numeric flag parses checked: garbage must error out loudly,
    // not silently become 0 (bare atoi) or wrap through an unsigned cast.
    auto CountFlag = [&](uint64_t Max, auto &Out) {
      std::optional<uint64_t> Parsed = parseUnsignedArg(Value, Max);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: %s needs an unsigned integer <= %llu, got "
                     "'%s'\n",
                     Arg.c_str(), static_cast<unsigned long long>(Max),
                     Value);
        return false;
      }
      Out = static_cast<std::remove_reference_t<decltype(Out)>>(*Parsed);
      return true;
    };
    if (Arg == "--train")
      Options.TrainCsv = Value;
    else if (Arg == "--dataset")
      Options.DatasetName = Value;
    else if (Arg == "--query")
      Options.QueryValues = Value;
    else if (Arg == "--row") {
      if (!CountFlag(INT_MAX, Options.TestRow))
        return false;
    } else if (Arg == "--n") {
      if (!CountFlag(UINT32_MAX, Options.Budget))
        return false;
    } else if (Arg == "--depth") {
      if (!CountFlag(UINT_MAX, Options.Depth))
        return false;
    } else if (Arg == "--cap") {
      if (!CountFlag(SIZE_MAX, Options.DisjunctCap))
        return false;
    } else if (Arg == "--timeout") {
      std::optional<double> Parsed = parseDoubleArg(Value);
      if (!Parsed || *Parsed < 0.0) {
        std::fprintf(stderr,
                     "error: --timeout needs a finite number of seconds "
                     ">= 0, got '%s'\n",
                     Value);
        return false;
      }
      Options.TimeoutSeconds = *Parsed;
    } else if (Arg == "--jobs" || Arg == "--frontier-jobs" ||
               Arg == "--split-jobs") {
      unsigned *Out = Arg == "--jobs" ? &Options.Jobs
                      : Arg == "--frontier-jobs" ? &Options.FrontierJobs
                                                 : &Options.SplitJobs;
      if (!CountFlag(UINT_MAX, *Out))
        return false;
    } else if (Arg == "--domain") {
      if (std::strcmp(Value, "box") == 0)
        Options.Domain = AbstractDomainKind::Box;
      else if (std::strcmp(Value, "disjuncts") == 0)
        Options.Domain = AbstractDomainKind::Disjuncts;
      else if (std::strcmp(Value, "capped") == 0)
        Options.Domain = AbstractDomainKind::DisjunctsCapped;
      else {
        std::fprintf(stderr, "error: unknown domain '%s'\n", Value);
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  bool HaveData = !Options.TrainCsv.empty() ^ !Options.DatasetName.empty();
  bool HaveQuery = !Options.QueryValues.empty() || Options.TestRow >= 0 ||
                   Options.AllRows;
  if (!HaveData || !HaveQuery) {
    std::fprintf(stderr, "error: need one data source and one query\n");
    return false;
  }
  if (Options.AllRows && (Options.FlipModel || Options.DatasetName.empty())) {
    std::fprintf(stderr, "error: --all needs --dataset and no --flip\n");
    return false;
  }
  return true;
}

/// Parses "v1,v2,..." into floats; returns false on malformed input.
bool parseQuery(const std::string &Text, unsigned NumFeatures,
                std::vector<float> &Query) {
  const char *Cursor = Text.c_str();
  while (*Cursor) {
    char *End = nullptr;
    float V = std::strtof(Cursor, &End);
    if (End == Cursor)
      return false;
    Query.push_back(V);
    Cursor = End;
    if (*Cursor == ',')
      ++Cursor;
  }
  return Query.size() == NumFeatures;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }

  // Resolve the training set and query vector.
  Dataset Train;
  Dataset Test;
  if (!Options.TrainCsv.empty()) {
    CsvLoadResult Loaded = loadCsvDataset(Options.TrainCsv);
    if (!Loaded.succeeded()) {
      std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
      return 2;
    }
    Train = std::move(*Loaded.Data);
  } else {
    BenchmarkDataset Bench =
        loadBenchmarkDataset(Options.DatasetName, benchScaleFromEnv());
    Train = std::move(Bench.Split.Train);
    Test = std::move(Bench.Split.Test);
  }
  if (Options.Budget > Train.numRows()) {
    std::fprintf(stderr,
                 "error: --n %u exceeds the %u-row training set (the "
                 "attacker cannot have contributed more rows than exist)\n",
                 Options.Budget, Train.numRows());
    return 2;
  }
  std::vector<float> Query;
  if (Options.AllRows) {
    // Resolved below; --all verifies the whole test split in one batch.
  } else if (!Options.QueryValues.empty()) {
    if (!parseQuery(Options.QueryValues, Train.numFeatures(), Query)) {
      std::fprintf(stderr, "error: query must have %u numeric values\n",
                   Train.numFeatures());
      return 2;
    }
  } else {
    if (Test.numRows() == 0 ||
        Options.TestRow >= static_cast<int>(Test.numRows())) {
      std::fprintf(stderr, "error: --row requires a --dataset test split "
                           "with that many rows\n");
      return 2;
    }
    const float *Row = Test.row(static_cast<unsigned>(Options.TestRow));
    Query.assign(Row, Row + Train.numFeatures());
  }

  std::printf("training set: %u rows x %u features, %u classes\n",
              Train.numRows(), Train.numFeatures(), Train.numClasses());
  std::printf("threat model: up to %u %s\n", Options.Budget,
              Options.FlipModel ? "label flips"
                                : "attacker-contributed rows (removals)");

  if (Options.FlipModel) {
    SplitContext Ctx(Train);
    LabelFlipConfig Config;
    Config.Depth = Options.Depth;
    Config.Limits.TimeoutSeconds = Options.TimeoutSeconds;
    LabelFlipResult Result = verifyLabelFlipRobustness(
        Ctx, allRows(Train), Query.data(), Options.Budget, Config);
    std::printf("prediction: class %u\n", Result.ConcretePrediction);
    std::printf("verdict: %s (%zu terminals, %.3fs)\n",
                Result.Robust ? "ROBUST (proven)" : "unknown",
                Result.NumTerminals, Result.Seconds);
    return Result.Robust ? 0 : 1;
  }

  Verifier V(Train);
  VerifierConfig Config;
  Config.Depth = Options.Depth;
  Config.Domain = Options.Domain;
  Config.DisjunctCap = Options.DisjunctCap;
  Config.Limits.TimeoutSeconds = Options.TimeoutSeconds;
  Config.FrontierJobs = Options.FrontierJobs;
  Config.SplitJobs = Options.SplitJobs;
  // One pool shared by every query of the process and by both in-query
  // fan-out levels (it outlives the verify/verifyBatch calls below);
  // null when --frontier-jobs and --split-jobs are both 1.
  std::unique_ptr<ThreadPool> FrontierPool = makeVerificationPool(
      sharedFanoutJobs(Options.FrontierJobs, Options.SplitJobs));
  Config.FrontierPool = FrontierPool.get();

  if (Options.AllRows) {
    std::vector<const float *> Inputs;
    for (uint32_t Row = 0; Row < Test.numRows(); ++Row)
      Inputs.push_back(Test.row(Row));
    std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Options.Jobs);
    std::printf("verifying %zu test rows on %u thread(s), %u shared "
                "frontier/split executor(s) per query\n",
                Inputs.size(), Pool ? Pool->size() + 1 : 1,
                FrontierPool ? FrontierPool->size() + 1 : 1);
    std::vector<Certificate> Certs =
        V.verifyBatch(Inputs, Options.Budget, Config, Pool.get());
    unsigned Robust = 0;
    for (uint32_t Row = 0; Row < Certs.size(); ++Row) {
      Robust += Certs[Row].isRobust();
      std::printf("row %4u: %s\n", Row, Certs[Row].summary().c_str());
    }
    std::printf("robust: %u / %zu\n", Robust, Certs.size());
    return Robust == Certs.size() ? 0 : 1;
  }

  Certificate Cert = V.verify(Query.data(), Options.Budget, Config);
  std::printf("prediction: class %u\n", Cert.ConcretePrediction);
  std::printf("verdict: %s\n", Cert.summary().c_str());
  return Cert.isRobust() ? 0 : 1;
}
