//===- examples/antidote_cli.cpp - Command-line verifier ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// A standalone command-line front end to the verifier, for certifying CSV
// datasets without writing any C++:
//
//   antidote_cli --train train.csv --query "5.1,3.5,1.4,0.2" --n 8
//                --depth 2 --domain disjuncts
//   antidote_cli --dataset mammography --row 3 --n 16 --threat flip
//   antidote_cli --dataset iris --all --n 4 --jobs 8
//   antidote_cli --dataset iris --serve --n 4 --cache-bytes 1048576
//   antidote_cli --dataset iris --listen 0 --n 4 --cache-dir store
//                --replicate-from primary:9000
//
// --threat picks the poisoning model (removal | flip); every mode —
// single query, --all, --serve, caching, the disk store — works under
// either, through the same Verifier stack.
//
// --serve turns the process into a warm certificate server: queries
// stream in on stdin (one "v1,v2,..." feature vector per line), are
// batched through one long-lived Verifier + thread pool, and repeated
// queries short-circuit to the fingerprint-keyed certificate store.
//
// The store is composed here, at the wiring layer: a RAM LRU
// (CertCache) in front of an optional persistent DiskCertStore behind
// one TieredStore facade — everything downstream (CertServer,
// NetServer, Replicator) holds only the abstract CertificateStore.
// --replicate-from turns a serving process into a replica that pulls
// the source's journal into its own --cache-dir.
//
// Exit code 0 = robust proven (with --all/--serve: every query proven),
// 1 = not proven, 2 = usage/load error.
//
//===----------------------------------------------------------------------===//

#include "data/Csv.h"
#include "data/Registry.h"
#include "serving/CertCache.h"
#include "serving/CertServer.h"
#include "serving/DiskCertStore.h"
#include "serving/NetServer.h"
#include "serving/Replicator.h"
#include "serving/ServingOptions.h"
#include "serving/TieredStore.h"
#include "support/Parse.h"

#include <signal.h>

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <iostream>
#include <memory>
#include <string>
#include <type_traits>

using namespace antidote;

namespace {

/// Parsed command line: the shared serving knobs plus this front end's
/// own mode and verification flags.
struct CliOptions {
  ServingOptions Serving;
  std::string TrainCsv;
  std::string DatasetName;
  std::string QueryValues; ///< Comma-separated feature vector.
  int TestRow = -1;        ///< Row of the registry test split to query.
  bool AllRows = false;    ///< Verify every row of the test split.
  bool Serve = false;      ///< Serve stdin queries through a CertServer.
  uint32_t Budget = 1;
  unsigned Depth = 2;
  AbstractDomainKind Domain = AbstractDomainKind::Disjuncts;
  size_t DisjunctCap = 64;
  double TimeoutSeconds = 60.0;
};

void printUsage() {
  std::printf(
      "usage: antidote_cli (--train FILE.csv | --dataset NAME)\n"
      "                    (--query \"v1,v2,...\" | --row K | --all |"
      " --serve |\n"
      "                     --listen PORT)\n"
      "                    [--n N] [--depth D] [--domain box|disjuncts|"
      "capped]\n"
      "                    [--cap K] [--timeout SECONDS] [serving "
      "knobs...]\n\n"
      "  --train    training set CSV (features..., integer label)\n"
      "  --dataset  built-in benchmark:");
  for (const std::string &Name : benchmarkDatasetNames())
    std::printf(" %s", Name.c_str());
  std::printf(
      "\n"
      "  --query    feature vector of the input to certify\n"
      "  --row      use row K of the benchmark's test split\n"
      "  --all      certify every row of the test split\n"
      "  --serve    warm certificate server: read one query per line\n"
      "             (\"v1,v2,...\") from stdin, batch them through one\n"
      "             long-lived Verifier, cache repeated queries\n"
      "  --listen   network certificate server: bind 127.0.0.1:PORT\n"
      "             (0 = kernel-assigned, printed on startup) and speak\n"
      "             the length-prefixed binary protocol (see\n"
      "             examples/net_client.cpp); SIGINT/SIGTERM shut down\n"
      "             cleanly and print the net:/cache:/disk: stats; also\n"
      "             answers replication journal polls, so replicas can\n"
      "             pull this process's store\n"
      "\n"
      "verification knobs:\n"
      "  --n N            poisoning budget (at most the training-set "
      "size; default 1)\n"
      "  --depth D        decision-tree depth (default 2)\n"
      "  --domain D       abstract domain: box|disjuncts|capped "
      "(default disjuncts)\n"
      "  --cap K          disjunct cap, capped domain only (default "
      "64)\n"
      "  --timeout S      per-query wall-clock budget, seconds (0 = "
      "none; default 60)\n\n");
  ServingOptions::printHelp(stdout);
  std::printf(
      "\nreplication: --replicate-from needs --cache-dir (the journaled "
      "disk\nstore is the replication target) and --serve or --listen; "
      "replicated\ncertificates are byte-identical to the source's and "
      "pass the same\nchecksum/duplicate validation as local appends.\n");
}

bool parseArgs(int Argc, char **Argv, CliOptions &Options) {
  // The shared serving knobs first (env twins, then their flags);
  // whatever remains is this front end's own.
  if (!Options.Serving.parse(Argc, Argv))
    return false;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--help" || Arg == "-h")
      return false;
    const char *Value = nullptr;
    if (Arg == "--all") {
      Options.AllRows = true;
      continue;
    }
    if (Arg == "--serve") {
      Options.Serve = true;
      continue;
    }
    if (!(Value = Next())) {
      std::fprintf(stderr, "error: %s needs a value\n", Arg.c_str());
      return false;
    }
    // Every numeric flag parses checked: garbage must error out loudly,
    // not silently become 0 (bare atoi) or wrap through an unsigned cast.
    auto CountFlag = [&](uint64_t Max, auto &Out) {
      std::optional<uint64_t> Parsed = parseUnsignedArg(Value, Max);
      if (!Parsed) {
        std::fprintf(stderr,
                     "error: %s needs an unsigned integer <= %llu, got "
                     "'%s'\n",
                     Arg.c_str(), static_cast<unsigned long long>(Max),
                     Value);
        return false;
      }
      Out = static_cast<std::remove_reference_t<decltype(Out)>>(*Parsed);
      return true;
    };
    if (Arg == "--train")
      Options.TrainCsv = Value;
    else if (Arg == "--dataset")
      Options.DatasetName = Value;
    else if (Arg == "--query")
      Options.QueryValues = Value;
    else if (Arg == "--row") {
      if (!CountFlag(INT_MAX, Options.TestRow))
        return false;
    } else if (Arg == "--n") {
      if (!CountFlag(UINT32_MAX, Options.Budget))
        return false;
    } else if (Arg == "--depth") {
      if (!CountFlag(UINT_MAX, Options.Depth))
        return false;
    } else if (Arg == "--cap") {
      if (!CountFlag(SIZE_MAX, Options.DisjunctCap))
        return false;
    } else if (Arg == "--timeout") {
      std::optional<double> Parsed = parseDoubleArg(Value);
      if (!Parsed || *Parsed < 0.0) {
        std::fprintf(stderr,
                     "error: --timeout needs a finite number of seconds "
                     ">= 0, got '%s'\n",
                     Value);
        return false;
      }
      Options.TimeoutSeconds = *Parsed;
    } else if (Arg == "--domain") {
      if (std::strcmp(Value, "box") == 0)
        Options.Domain = AbstractDomainKind::Box;
      else if (std::strcmp(Value, "disjuncts") == 0)
        Options.Domain = AbstractDomainKind::Disjuncts;
      else if (std::strcmp(Value, "capped") == 0)
        Options.Domain = AbstractDomainKind::DisjunctsCapped;
      else {
        std::fprintf(stderr, "error: unknown domain '%s'\n", Value);
        return false;
      }
    } else {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return false;
    }
  }
  const ServingOptions &Serving = Options.Serving;
  bool HaveData = !Options.TrainCsv.empty() ^ !Options.DatasetName.empty();
  bool HaveQuery = !Options.QueryValues.empty() || Options.TestRow >= 0 ||
                   Options.AllRows || Options.Serve || Serving.Listen;
  if (!HaveData || !HaveQuery) {
    std::fprintf(stderr, "error: need one data source and one query "
                         "source\n");
    return false;
  }
  if (Options.AllRows && Options.DatasetName.empty()) {
    std::fprintf(stderr, "error: --all needs --dataset\n");
    return false;
  }
  if (Options.Serve && (Options.AllRows || !Options.QueryValues.empty() ||
                        Options.TestRow >= 0 || Serving.Listen)) {
    std::fprintf(stderr,
                 "error: --serve takes queries from stdin only\n");
    return false;
  }
  if (Serving.Listen && (Options.AllRows || !Options.QueryValues.empty() ||
                         Options.TestRow >= 0)) {
    std::fprintf(stderr,
                 "error: --listen takes queries from the socket only\n");
    return false;
  }
  if (Serving.Replicate) {
    if (Serving.CacheDir.empty()) {
      std::fprintf(stderr,
                   "error: --replicate-from needs --cache-dir (the "
                   "journaled disk store is the replication target)\n");
      return false;
    }
    if (!Options.Serve && !Serving.Listen) {
      std::fprintf(stderr,
                   "error: --replicate-from needs --serve or --listen "
                   "(a one-shot process has no time to replicate)\n");
      return false;
    }
  }
  if (!threatModel(Serving.Threat).supportsDomain(Options.Domain)) {
    std::fprintf(stderr,
                 "error: the %s threat model supports only the disjuncts "
                 "domain (its class-probability transformer is unsound "
                 "under box joins)\n",
                 threatModelName(Serving.Threat));
    return false;
  }
  return true;
}

/// Every store tier's stats line comes from the one shared
/// `StoreStats::summary()` rendering — the CI smokes grep these.
void printStoreLines(const CertCache *Cache, const DiskCertStore *Disk) {
  if (Cache)
    std::printf("cache: %s\n", Cache->stats().summary().c_str());
  if (Disk)
    std::printf("disk: %s\n", Disk->stats().summary().c_str());
}

/// The replica's transcript line, printed at shutdown; the CI
/// replication smoke pins `applied=` exactly.
void printReplStats(const ReplicatorStats &Stats) {
  std::printf("repl: polls=%llu applied=%llu duplicates=%llu "
              "corrupt=%llu epoch_resets=%llu errors=%llu\n",
              static_cast<unsigned long long>(Stats.Polls),
              static_cast<unsigned long long>(Stats.Applied),
              static_cast<unsigned long long>(Stats.Duplicates),
              static_cast<unsigned long long>(Stats.Corrupt),
              static_cast<unsigned long long>(Stats.EpochResets),
              static_cast<unsigned long long>(Stats.Errors));
}

/// Parses "v1,v2,..." into floats; returns false on malformed input.
bool parseQuery(const std::string &Text, unsigned NumFeatures,
                std::vector<float> &Query) {
  const char *Cursor = Text.c_str();
  while (*Cursor) {
    char *End = nullptr;
    float V = std::strtof(Cursor, &End);
    if (End == Cursor)
      return false;
    Query.push_back(V);
    Cursor = End;
    if (*Cursor == ',')
      ++Cursor;
  }
  return Query.size() == NumFeatures;
}

} // namespace

int main(int Argc, char **Argv) {
  CliOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }
  const ServingOptions &Serving = Options.Serving;

  // Resolve the training set and query vector.
  Dataset Train;
  Dataset Test;
  if (!Options.TrainCsv.empty()) {
    CsvLoadResult Loaded = loadCsvDataset(Options.TrainCsv);
    if (!Loaded.succeeded()) {
      std::fprintf(stderr, "error: %s\n", Loaded.Error.c_str());
      return 2;
    }
    Train = std::move(*Loaded.Data);
  } else {
    BenchmarkDataset Bench =
        loadBenchmarkDataset(Options.DatasetName, benchScaleFromEnv());
    Train = std::move(Bench.Split.Train);
    Test = std::move(Bench.Split.Test);
  }
  if (Options.Budget > Train.numRows()) {
    std::fprintf(stderr,
                 "error: --n %u exceeds the %u-row training set (the "
                 "attacker cannot have contributed more rows than exist)\n",
                 Options.Budget, Train.numRows());
    return 2;
  }
  std::vector<float> Query;
  if (Options.AllRows || Options.Serve || Serving.Listen) {
    // --all resolves its inputs below; --serve reads them from stdin,
    // --listen from the socket.
  } else if (!Options.QueryValues.empty()) {
    if (!parseQuery(Options.QueryValues, Train.numFeatures(), Query)) {
      std::fprintf(stderr, "error: query must have %u numeric values\n",
                   Train.numFeatures());
      return 2;
    }
  } else {
    if (Test.numRows() == 0 ||
        Options.TestRow >= static_cast<int>(Test.numRows())) {
      std::fprintf(stderr, "error: --row requires a --dataset test split "
                           "with that many rows\n");
      return 2;
    }
    const float *Row = Test.row(static_cast<unsigned>(Options.TestRow));
    Query.assign(Row, Row + Train.numFeatures());
  }

  std::printf("training set: %u rows x %u features, %u classes\n",
              Train.numRows(), Train.numFeatures(), Train.numClasses());
  std::printf("threat model: %s (up to %u %s)\n",
              threatModelName(Serving.Threat), Options.Budget,
              Serving.Threat == ThreatModelKind::LabelFlip
                  ? "relabeled training rows"
                  : "attacker-contributed rows removed");

  // The store composition happens here, once, and everything below
  // holds only the abstract CertificateStore: a RAM LRU in front
  // (always on under --serve/--listen, opt-in otherwise), the
  // persistent tier behind (--cache-dir / ANTIDOTE_CACHE_DIR, with the
  // retention budget), both behind one TieredStore facade. An unusable
  // directory is a usage error — fail loudly now, not after hours of
  // verification.
  std::unique_ptr<DiskCertStore> DiskStore;
  if (!Serving.CacheDir.empty()) {
    DiskCertStoreOptions DiskOptions;
    DiskOptions.RetentionBytes = Serving.RetentionBytes;
    DiskCertStore::OpenResult Opened =
        DiskCertStore::open(Serving.CacheDir, DiskOptions);
    if (!Opened.ok()) {
      std::fprintf(stderr, "error: %s\n", Opened.Error.c_str());
      return 2;
    }
    DiskStore = std::move(Opened.Store);
  }
  bool WantCache = Serving.CacheEnabled || Options.Serve || Serving.Listen;
  std::unique_ptr<CertCache> Cache;
  if (WantCache)
    Cache = std::make_unique<CertCache>(Serving.CacheBytes);
  TieredStore Tiered(Cache.get(), DiskStore.get());
  CertificateStore *Store =
      (Cache || DiskStore) ? static_cast<CertificateStore *>(&Tiered)
                           : nullptr;

  // The replica side: a background puller appending the source's
  // journal records through the normal validated path. Wired against
  // the abstract store — replication() resolves to the disk tier.
  std::unique_ptr<Replicator> Repl;
  if (Serving.Replicate) {
    ReplicatorConfig ReplConfig;
    ReplConfig.Host = Serving.ReplicateHost;
    ReplConfig.Port = Serving.ReplicatePort;
    ReplConfig.IntervalSeconds = Serving.ReplicateInterval;
    Repl = std::make_unique<Replicator>(*Store, ReplConfig);
    std::string Error;
    if (!Repl->start(Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    std::printf("replicating from %s:%u every %g s\n",
                Serving.ReplicateHost.c_str(), Serving.ReplicatePort,
                Serving.ReplicateInterval);
  }

  if (Serving.Listen) {
    // Block the shutdown signals *before* the server threads spawn so
    // every thread inherits the mask and sigwait below is the only
    // consumer — the one portable way to both run an epoll loop and
    // shut down cleanly on SIGINT/SIGTERM.
    sigset_t ShutdownSigs;
    sigemptyset(&ShutdownSigs);
    sigaddset(&ShutdownSigs, SIGINT);
    sigaddset(&ShutdownSigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &ShutdownSigs, nullptr);

    CertServerConfig ServerConfig;
    ServerConfig.Query.Depth = Options.Depth;
    ServerConfig.Query.Domain = Options.Domain;
    ServerConfig.Query.Threat = Serving.Threat;
    ServerConfig.Query.DisjunctCap = Options.DisjunctCap;
    ServerConfig.Query.Limits.TimeoutSeconds = Options.TimeoutSeconds;
    ServerConfig.Query.Limits.MaxCacheBytes = Serving.CacheBytes;
    ServerConfig.Query.FrontierJobs = Serving.FrontierJobs;
    ServerConfig.Query.SplitJobs = Serving.SplitJobs;
    ServerConfig.Query.DeltaSlack = Serving.DeltaSlack;
    ServerConfig.Jobs = Serving.Jobs;
    ServerConfig.Store = Store;
    CertServer Server(Train, ServerConfig);

    NetServerConfig NetConfig;
    NetConfig.Port = Serving.ListenPort;
    NetConfig.MaxClients = Serving.MaxClients;
    NetConfig.ShedDepth = Serving.ShedDepth;
    NetConfig.ClientRate = Serving.ClientRate;
    NetConfig.ClientBurst = Serving.ClientBurst;
    NetServer Net(Server, NetConfig);
    std::string Error;
    if (!Net.start(Error)) {
      std::fprintf(stderr, "error: %s\n", Error.c_str());
      return 2;
    }
    // The CI smoke (and any script) learns the kernel-assigned port
    // from this line; keep its shape stable.
    std::printf("listening on 127.0.0.1:%u (dataset %s, threat %s, %u "
                "features)\n",
                Net.port(), Server.verifier().fingerprint().hex().c_str(),
                threatModelName(Serving.Threat), Train.numFeatures());
    std::fflush(stdout);

    int Sig = 0;
    sigwait(&ShutdownSigs, &Sig);
    std::printf("signal %d: shutting down\n", Sig);
    if (Repl)
      Repl->stop();
    Net.stop();
    NetServerStats Stats = Net.stats();
    std::printf("net: accepted=%llu refused=%llu framing=%llu "
                "requests=%llu verified=%llu probe_hits=%llu "
                "shed_overload=%llu shed_paced=%llu bad_requests=%llu "
                "cancelled=%llu journal_polls=%llu\n",
                static_cast<unsigned long long>(Stats.Accepted),
                static_cast<unsigned long long>(Stats.RefusedClients),
                static_cast<unsigned long long>(Stats.FramingErrors),
                static_cast<unsigned long long>(Stats.Requests),
                static_cast<unsigned long long>(Stats.Verified),
                static_cast<unsigned long long>(Stats.ProbeHits),
                static_cast<unsigned long long>(Stats.ShedOverload),
                static_cast<unsigned long long>(Stats.ShedPaced),
                static_cast<unsigned long long>(Stats.BadArity),
                static_cast<unsigned long long>(Stats.Cancelled),
                static_cast<unsigned long long>(Stats.JournalPolls));
    if (Repl)
      printReplStats(Repl->stats());
    printStoreLines(Cache.get(), DiskStore.get());
    return 0;
  }

  if (Options.Serve) {
    CertServerConfig ServerConfig;
    ServerConfig.Query.Depth = Options.Depth;
    ServerConfig.Query.Domain = Options.Domain;
    ServerConfig.Query.Threat = Serving.Threat;
    ServerConfig.Query.DisjunctCap = Options.DisjunctCap;
    ServerConfig.Query.Limits.TimeoutSeconds = Options.TimeoutSeconds;
    ServerConfig.Query.Limits.MaxCacheBytes = Serving.CacheBytes;
    ServerConfig.Query.FrontierJobs = Serving.FrontierJobs;
    ServerConfig.Query.SplitJobs = Serving.SplitJobs;
    ServerConfig.Query.DeltaSlack = Serving.DeltaSlack;
    ServerConfig.Jobs = Serving.Jobs;
    ServerConfig.Store = Store;
    CertServer Server(Train, ServerConfig);
    std::printf("serving (dataset %s, threat %s): one query per line on "
                "stdin (%u comma-separated features), n=%u\n",
                Server.verifier().fingerprint().hex().c_str(),
                threatModelName(Serving.Threat), Train.numFeatures(),
                Options.Budget);

    // Responses stream back in submission order as they complete — an
    // interactive client sees answers while it is still typing queries,
    // and a long-running feed cannot pile up unbounded futures (past the
    // window, reading blocks on the oldest in-flight answer — natural
    // backpressure against a producer outpacing verification).
    std::deque<std::future<Certificate>> Pending;
    size_t Submitted = 0, Printed = 0;
    unsigned Robust = 0;
    auto PrintFront = [&] {
      Certificate Cert = Pending.front().get();
      Pending.pop_front();
      Robust += Cert.isRobust();
      std::printf("query %4zu: %s\n", Printed++, Cert.summary().c_str());
      std::fflush(stdout);
    };
    auto FlushReady = [&] {
      while (!Pending.empty() &&
             Pending.front().wait_for(std::chrono::seconds(0)) ==
                 std::future_status::ready)
        PrintFront();
    };
    const size_t MaxPending = 1024;

    std::string Line;
    size_t LineNo = 0;
    while (std::getline(std::cin, Line)) {
      ++LineNo;
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      if (Line.empty() || Line[0] == '#')
        continue;
      std::vector<float> X;
      if (!parseQuery(Line, Train.numFeatures(), X)) {
        std::fprintf(stderr,
                     "error: line %zu: query must have %u numeric "
                     "values\n",
                     LineNo, Train.numFeatures());
        // Don't let the destructor's clean drain fully verify a deep
        // backlog after the user already saw the error — cancel it.
        Server.abort();
        return 2;
      }
      Pending.push_back(Server.submit(std::move(X), Options.Budget));
      ++Submitted;
      FlushReady();
      while (Pending.size() >= MaxPending)
        PrintFront();
    }
    while (!Pending.empty())
      PrintFront();

    std::printf("served %zu queries (threat %s): %u robust\n", Submitted,
                threatModelName(Serving.Threat), Robust);
    if (Repl) {
      Repl->stop();
      printReplStats(Repl->stats());
    }
    printStoreLines(Cache.get(), DiskStore.get());
    return Robust == Submitted ? 0 : 1;
  }

  Verifier V(Train);
  VerifierConfig Config;
  Config.Depth = Options.Depth;
  Config.Domain = Options.Domain;
  Config.Threat = Serving.Threat;
  Config.DisjunctCap = Options.DisjunctCap;
  Config.Limits.TimeoutSeconds = Options.TimeoutSeconds;
  Config.Limits.MaxCacheBytes = Serving.CacheBytes;
  Config.FrontierJobs = Serving.FrontierJobs;
  Config.SplitJobs = Serving.SplitJobs;
  Config.DeltaSlack = Serving.DeltaSlack;
  // The one-shot and --all modes reuse the same composed store: a
  // RAM-only cache is pointless for a one-shot batch with distinct rows
  // but demos the hit path; the two-tier composition with a --cache-dir
  // makes even one-shot runs remember across processes — re-running the
  // same query answers from disk.
  if (Store)
    Config.Cache = Store;
  // One pool shared by every query of the process and by both in-query
  // fan-out levels (it outlives the verify/verifyBatch calls below);
  // null when --frontier-jobs and --split-jobs are both 1.
  std::unique_ptr<ThreadPool> FrontierPool = makeVerificationPool(
      sharedFanoutJobs(Serving.FrontierJobs, Serving.SplitJobs));
  Config.FrontierPool = FrontierPool.get();

  if (Options.AllRows) {
    std::vector<const float *> Inputs;
    for (uint32_t Row = 0; Row < Test.numRows(); ++Row)
      Inputs.push_back(Test.row(Row));
    std::unique_ptr<ThreadPool> Pool = makeVerificationPool(Serving.Jobs);
    std::printf("verifying %zu test rows on %u thread(s), %u shared "
                "frontier/split executor(s) per query\n",
                Inputs.size(), Pool ? Pool->size() + 1 : 1,
                FrontierPool ? FrontierPool->size() + 1 : 1);
    std::vector<Certificate> Certs =
        V.verifyBatch(Inputs, Options.Budget, Config, Pool.get());
    unsigned Robust = 0;
    for (uint32_t Row = 0; Row < Certs.size(); ++Row) {
      Robust += Certs[Row].isRobust();
      std::printf("row %4u: %s\n", Row, Certs[Row].summary().c_str());
    }
    std::printf("robust (threat %s): %u / %zu\n",
                threatModelName(Serving.Threat), Robust, Certs.size());
    printStoreLines(Cache.get(), DiskStore.get());
    return Robust == Certs.size() ? 0 : 1;
  }

  Certificate Cert = V.verify(Query.data(), Options.Budget, Config);
  std::printf("prediction: class %u\n", Cert.ConcretePrediction);
  std::printf("verdict: %s\n", Cert.summary().c_str());
  printStoreLines(Cache.get(), DiskStore.get());
  return Cert.isRobust() ? 0 : 1;
}
