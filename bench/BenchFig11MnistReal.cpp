//===- bench/BenchFig11MnistReal.cpp - Figure 11 reproduction ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates Figure 11: efficacy / performance / memory on
// MNIST-1-7-Real — the hardest benchmark (784 real-valued features, so
// every bestSplit# weighs hundreds of thousands of symbolic candidates).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace antidote;
using namespace antidote::benchutil;

int main() {
  FigureBenchSpec Spec;
  Spec.DatasetName = "mnist17-real";
  Spec.PaperFigure = "Figure 11";
  Spec.Full = paperScaleConfig();
  Spec.Scaled = scaledConfig();
  // Real-valued MNIST is the paper's slowest configuration (100% timeouts
  // at depth 3 with disjuncts and 0.05% poisoning); at bench scale we keep
  // the instance budget tight and depths shallow so the suite terminates.
  Spec.Scaled.Depths = {1, 2};
  Spec.Scaled.InstanceLimits.TimeoutSeconds = 1.5;
  Spec.PaperShapeNotes = {
      "Same dataset size as MNIST-1-7-Binary but real features: a massive "
      "slowdown and fewer instances proven (the §6.3 binary-vs-real "
      "comparison)",
      "Disjuncts times out everywhere at depth >= 3 with even 0.05% "
      "poisoning",
      "Average times 1-4 orders of magnitude above the binary variant",
  };
  SweepResult Result = runFigureBench(Spec);
  (void)Result;
  return 0;
}
