//===- bench/BenchFig9Mammo.cpp - Figure 9 reproduction ------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates Figure 9: efficacy / performance / memory on the
// Mammographic-Masses-like dataset.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace antidote;
using namespace antidote::benchutil;

int main() {
  FigureBenchSpec Spec;
  Spec.DatasetName = "mammography";
  Spec.PaperFigure = "Figure 9";
  Spec.Full = paperScaleConfig();
  Spec.Scaled = scaledConfig();
  Spec.Scaled.InstanceLimits.TimeoutSeconds = 2.0;
  Spec.PaperShapeNotes = {
      "A sizable fraction verifies out to n in the tens (up to ~10% of the "
      "training set) — the most poisoning-tolerant UCI benchmark",
      "Disjuncts beats Box increasingly with depth",
      "Sub-second average times at every depth in the paper's plots",
  };
  runFigureBench(Spec);
  return 0;
}
