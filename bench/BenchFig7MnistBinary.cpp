//===- bench/BenchFig7MnistBinary.cpp - Figure 7 reproduction ------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates Figure 7: efficacy, performance, and memory usage on
// MNIST-1-7-Binary — #verified / average time / average peak memory per
// poisoning n, for the Box and Disjuncts domains at depths 1-4.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace antidote;
using namespace antidote::benchutil;

int main() {
  FigureBenchSpec Spec;
  Spec.DatasetName = "mnist17-binary";
  Spec.PaperFigure = "Figure 7";
  Spec.Full = paperScaleConfig();
  Spec.Scaled = scaledConfig();
  Spec.Scaled.InstanceLimits.TimeoutSeconds = 0.75;
  Spec.PaperShapeNotes = {
      "Disjuncts verifies more instances than Box at every depth >= 2",
      "e.g. depth 3, n = 64: Disjuncts 52 vs Box 15 verified (of 100)",
      "Box time/memory grow slowly (95% of runs < 20 s; none time out)",
      "Disjuncts time/memory grow exponentially with n; timeouts appear "
      "at depth 4 and large n",
      "Box can verify instances at depth-4/n=128 where Disjuncts only "
      "times out",
  };
  runFigureBench(Spec);
  return 0;
}
