//===- bench/BenchFig8Iris.cpp - Figure 8 reproduction -------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates Figure 8: efficacy / performance / memory on the Iris-like
// dataset (the one benchmark small enough that the paper plots it on
// linear axes).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace antidote;
using namespace antidote::benchutil;

int main() {
  FigureBenchSpec Spec;
  Spec.DatasetName = "iris";
  Spec.PaperFigure = "Figure 8";
  Spec.Full = paperScaleConfig();
  Spec.Scaled = scaledConfig();
  Spec.Scaled.InstanceLimits.TimeoutSeconds = 2.0;
  Spec.PaperShapeNotes = {
      "Depth 1 verifies almost nothing even at n = 1: the depth-1 tree has "
      "an exact 50/50 leaf (footnote 10), so any single removal could flip "
      "the label there",
      "Depth >= 2 verifies a large fraction at small n; provability decays "
      "within n <= ~6 (the training set has only 120 rows)",
      "Times are fractions of a second, memory a few MB — the small-scale "
      "corner of the evaluation",
  };
  runFigureBench(Spec);
  return 0;
}
