//===- bench/BenchAblation.cpp - Design-choice ablations ------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Ablates the three transformer/domain design choices DESIGN.md calls out:
//
//   (a) cprob#: the optimal extremal-average transformer (footnote 6) vs
//       the naive interval-division lifting,
//   (b) ent#: the exact per-term image of x(1-x) vs the literal
//       ι([1,1]−ι) interval arithmetic of the §4.4 text,
//   (c) the disjunct cap of the capped domain — the §6.3 future-work
//       strategy trading precision for bounded memory.
//
// Each panel reports verified counts (and cost) on the mammography-like
// benchmark so the effect of every choice is directly visible.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "abstract/AbstractBestSplit.h"
#include "antidote/Report.h"
#include "antidote/Verifier.h"
#include "support/Timer.h"

#include <cstdio>

using namespace antidote;

namespace {

/// Outcome counters for one verifier configuration over a query batch.
struct BatchOutcome {
  unsigned Verified = 0;
  unsigned Attempted = 0;
  double Seconds = 0.0;
  double PeakDisjuncts = 0.0;
};

BatchOutcome runBatch(const Verifier &V, const Dataset &Test,
                      const std::vector<uint32_t> &Rows, uint32_t Budget,
                      const VerifierConfig &Config) {
  BatchOutcome Outcome;
  for (uint32_t Row : Rows) {
    Certificate Cert = V.verify(Test.row(Row), Budget, Config);
    ++Outcome.Attempted;
    Outcome.Verified += Cert.isRobust();
    Outcome.Seconds += Cert.Seconds;
    Outcome.PeakDisjuncts += static_cast<double>(Cert.PeakDisjuncts);
  }
  return Outcome;
}

} // namespace

int main() {
  BenchmarkDataset Bench =
      loadBenchmarkDataset("mammography", benchScaleFromEnv());
  const Dataset &Train = Bench.Split.Train;
  const Dataset &Test = Bench.Split.Test;
  Verifier V(Train);
  std::printf("=== Ablations (mammography-like, %u train rows, %zu "
              "queries) ===\n\n",
              Train.numRows(), Bench.VerifyRows.size());

  // (a) cprob# transformer.
  {
    std::printf("--- (a) cprob#: optimal (footnote 6) vs naive interval "
                "division ---\n");
    TableWriter Table({"n", "optimal verified", "naive verified",
                       "optimal avg time", "naive avg time"});
    for (uint32_t N : {1u, 2u, 4u, 8u, 16u}) {
      VerifierConfig Optimal;
      Optimal.Depth = 2;
      Optimal.Domain = AbstractDomainKind::Disjuncts;
      Optimal.Limits.TimeoutSeconds = 2.0;
      VerifierConfig Naive = Optimal;
      Naive.Cprob = CprobTransformerKind::NaiveInterval;
      BatchOutcome A = runBatch(V, Test, Bench.VerifyRows, N, Optimal);
      BatchOutcome B = runBatch(V, Test, Bench.VerifyRows, N, Naive);
      Table.addRow({std::to_string(N), std::to_string(A.Verified),
                    std::to_string(B.Verified),
                    formatSeconds(A.Seconds / A.Attempted),
                    formatSeconds(B.Seconds / B.Attempted)});
    }
    Table.print();
    std::printf("\n");
  }

  // (b) ent# lifting.
  {
    std::printf("--- (b) ent#: exact per-term image vs literal interval "
                "arithmetic ---\n");
    TableWriter Table({"n", "exact-term verified", "natural verified",
                       "exact |bestSplit#|", "natural |bestSplit#|"});
    SplitContext Ctx(Train);
    AbstractDataset Whole = AbstractDataset::entire(Train, 0);
    for (uint32_t N : {1u, 2u, 4u, 8u, 16u}) {
      VerifierConfig Exact;
      Exact.Depth = 2;
      Exact.Domain = AbstractDomainKind::Disjuncts;
      Exact.Limits.TimeoutSeconds = 2.0;
      VerifierConfig Natural = Exact;
      Natural.Gini = GiniLiftingKind::NaturalLifting;
      BatchOutcome A = runBatch(V, Test, Bench.VerifyRows, N, Exact);
      BatchOutcome B = runBatch(V, Test, Bench.VerifyRows, N, Natural);
      // Root bestSplit# sizes: how many tied predicates each lifting keeps.
      AbstractDataset Root = AbstractDataset::entire(Train, N);
      size_t ExactPsi =
          abstractBestSplit(Ctx, Root, CprobTransformerKind::Optimal,
                            GiniLiftingKind::ExactTerm)
              ->size();
      size_t NaturalPsi =
          abstractBestSplit(Ctx, Root, CprobTransformerKind::Optimal,
                            GiniLiftingKind::NaturalLifting)
              ->size();
      Table.addRow({std::to_string(N), std::to_string(A.Verified),
                    std::to_string(B.Verified), std::to_string(ExactPsi),
                    std::to_string(NaturalPsi)});
    }
    Table.print();
    std::printf("(looser ent# keeps more tied predicates alive at the root "
                "and proves less)\n\n");
    (void)Whole;
  }

  // (c) disjunct cap sweep (§6.3's proposed strategy).
  {
    std::printf("--- (c) capped disjuncts: precision vs memory (depth 3, "
                "n = 4) ---\n");
    TableWriter Table({"cap", "verified", "avg time", "avg peak disjuncts"});
    for (size_t Cap : {size_t(1), size_t(2), size_t(4), size_t(16),
                       size_t(64), size_t(0)}) {
      VerifierConfig Config;
      Config.Depth = 3;
      Config.Limits.TimeoutSeconds = 2.0;
      if (Cap == 0) {
        Config.Domain = AbstractDomainKind::Disjuncts;
      } else {
        Config.Domain = AbstractDomainKind::DisjunctsCapped;
        Config.DisjunctCap = Cap;
      }
      BatchOutcome Outcome = runBatch(V, Test, Bench.VerifyRows, 4, Config);
      Table.addRow({Cap == 0 ? "unbounded" : std::to_string(Cap),
                    std::to_string(Outcome.Verified),
                    formatSeconds(Outcome.Seconds / Outcome.Attempted),
                    formatDouble(Outcome.PeakDisjuncts / Outcome.Attempted,
                                 1)});
    }
    Table.print();
    std::printf("(cap 1 behaves like Box after the first level; the "
                "unbounded row is §5.2's domain)\n");
  }
  return 0;
}
