//===- bench/BenchUtil.cpp - Shared figure-bench harness ----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "antidote/Report.h"
#include "serving/CertCache.h"
#include "support/MemoryUsage.h"
#include "support/Parse.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace antidote;
using namespace antidote::benchutil;

SweepConfig antidote::benchutil::paperScaleConfig() {
  SweepConfig Config;
  Config.Depths = {1, 2, 3, 4};
  Config.InstanceLimits.TimeoutSeconds = 3600.0;
  Config.InstanceLimits.MaxDisjuncts = 1u << 22;
  Config.InstanceLimits.MaxStateBytes = 32ull << 30;
  Config.MaxPoisoning = 1u << 14;
  return Config;
}

SweepConfig antidote::benchutil::scaledConfig() {
  SweepConfig Config;
  Config.Depths = {1, 2, 3, 4};
  Config.InstanceLimits.TimeoutSeconds = 1.0;
  Config.InstanceLimits.MaxDisjuncts = 1u << 16;
  Config.InstanceLimits.MaxStateBytes = 1ull << 30;
  Config.MaxPoisoning = 1u << 12;
  return Config;
}

static unsigned jobsFromEnvVar(const char *Name) {
  // Mirror the CLI parsers (shared report in support/Parse): a typo must
  // not silently become 0 (bare atoi) or wrap to a huge unsigned and
  // spawn a clamped-but-large pool.
  EnvNumber Env = readUnsignedEnvReporting(
      Name, "all cores", std::numeric_limits<unsigned>::max());
  if (Env.Status == EnvNumberStatus::Malformed)
    std::exit(2);
  return Env.Status == EnvNumberStatus::Ok
             ? static_cast<unsigned>(Env.Value)
             : 1;
}

unsigned antidote::benchutil::benchJobsFromEnv() {
  return jobsFromEnvVar("ANTIDOTE_JOBS");
}

unsigned antidote::benchutil::benchFrontierJobsFromEnv() {
  return jobsFromEnvVar("ANTIDOTE_FRONTIER_JOBS");
}

unsigned antidote::benchutil::benchSplitJobsFromEnv() {
  return jobsFromEnvVar("ANTIDOTE_SPLIT_JOBS");
}

std::optional<uint64_t> antidote::benchutil::benchCacheBytesFromEnv() {
  EnvNumber Env =
      readUnsignedEnvReporting("ANTIDOTE_CACHE_BYTES", "unbounded");
  if (Env.Status == EnvNumberStatus::Malformed)
    std::exit(2);
  if (Env.Status == EnvNumberStatus::Unset)
    return std::nullopt;
  return Env.Value;
}

SweepResult
antidote::benchutil::runFigureBench(const FigureBenchSpec &Spec) {
  BenchScale Scale = benchScaleFromEnv();
  SweepConfig Config = Scale == BenchScale::Full ? Spec.Full : Spec.Scaled;
  Config.Jobs = benchJobsFromEnv();
  Config.FrontierJobs = benchFrontierJobsFromEnv();
  Config.SplitJobs = benchSplitJobsFromEnv();
  std::optional<uint64_t> CacheBytes = benchCacheBytesFromEnv();
  std::unique_ptr<CertCache> Cache;
  if (CacheBytes) {
    Config.InstanceLimits.MaxCacheBytes = *CacheBytes;
    Cache = std::make_unique<CertCache>(Config.InstanceLimits);
    Config.Cache = Cache.get();
  }

  BenchmarkDataset Bench = loadBenchmarkDataset(Spec.DatasetName, Scale);
  std::printf("=== %s reproduction: %s ===\n", Spec.PaperFigure.c_str(),
              Spec.DatasetName.c_str());
  std::printf("scale: %s (set ANTIDOTE_BENCH_SCALE=full for paper scale); "
              "jobs: %u (ANTIDOTE_JOBS; 0 = all cores); "
              "frontier jobs: %u (ANTIDOTE_FRONTIER_JOBS); "
              "split jobs: %u (ANTIDOTE_SPLIT_JOBS); "
              "cert cache: %s (ANTIDOTE_CACHE_BYTES)\n",
              Scale == BenchScale::Full ? "full" : "scaled", Config.Jobs,
              Config.FrontierJobs, Config.SplitJobs,
              Cache ? "on" : "off");
  std::printf("train %u rows x %u features; verifying %zu test inputs; "
              "timeout %.1fs/instance\n\n",
              Bench.Split.Train.numRows(), Bench.Split.Train.numFeatures(),
              Bench.VerifyRows.size(),
              Config.InstanceLimits.TimeoutSeconds);

  Timer Total;
  SweepResult Result = runPoisoningSweep(Bench.Split.Train, Bench.Split.Test,
                                         Bench.VerifyRows, Config);

  // The three panels of Figures 7-11.
  for (const SweepSeries &Series : Result.Series) {
    std::printf("--- depth %u, %s domain ---\n", Series.Depth,
                Series.DomainName.c_str());
    TableWriter Table({"n", "attempted", "verified", "timeouts",
                       "resource", "avg time", "avg peak state mem"});
    for (const SweepCell &Cell : Series.Cells)
      Table.addRow({std::to_string(Cell.Poisoning),
                    std::to_string(Cell.Attempted),
                    std::to_string(Cell.Verified),
                    std::to_string(Cell.Timeouts),
                    std::to_string(Cell.ResourceFailures),
                    formatSeconds(Cell.avgSeconds()),
                    formatBytes(Cell.avgPeakStateBytes())});
    Table.print();
    std::printf("\n");
  }

  printFractionVerifiedSeries(Spec.DatasetName, Result, Config.Depths);

  if (!Spec.PaperShapeNotes.empty()) {
    std::printf("paper-reported shape (see EXPERIMENTS.md for the "
                "measured comparison):\n");
    for (const std::string &Note : Spec.PaperShapeNotes)
      std::printf("  - %s\n", Note.c_str());
  }
  if (Cache)
    std::printf("certificate cache: %s\n",
                Cache->stats().summary().c_str());
  std::printf("\ntotal bench time: %s; process peak RSS: %s\n\n",
              formatSeconds(Total.seconds()).c_str(),
              formatBytes(static_cast<double>(processPeakRssBytes()))
                  .c_str());
  return Result;
}

void antidote::benchutil::printFractionVerifiedSeries(
    const std::string &DatasetName, const SweepResult &Result,
    const std::vector<unsigned> &Depths) {
  std::printf("--- fraction verified vs n (Figure 6 panel: %s; either "
              "domain) ---\n",
              DatasetName.c_str());
  std::vector<std::string> Headers = {"n"};
  for (unsigned Depth : Depths)
    Headers.push_back("depth " + std::to_string(Depth));
  TableWriter Table(std::move(Headers));
  std::vector<uint32_t> AllNs;
  for (unsigned Depth : Depths)
    for (uint32_t N : Result.attemptedPoisonings(Depth))
      AllNs.push_back(N);
  std::sort(AllNs.begin(), AllNs.end());
  AllNs.erase(std::unique(AllNs.begin(), AllNs.end()), AllNs.end());
  for (uint32_t N : AllNs) {
    std::vector<std::string> Row = {std::to_string(N)};
    for (unsigned Depth : Depths)
      Row.push_back(formatPercent(Result.fractionVerified(Depth, N)));
    Table.addRow(std::move(Row));
  }
  Table.print();
  std::printf("\n");
}
