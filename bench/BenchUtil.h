//===- bench/BenchUtil.h - Shared figure-bench harness ----------*- C++ -*-===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common driver behind the per-figure bench binaries (Figures 6-11):
/// load a benchmark dataset at the active scale, run the §6.1 protocol,
/// and print the three panels each figure plots — #verified, average time,
/// and average peak abstract-state memory — per depth, domain, and n.
///
//===----------------------------------------------------------------------===//

#ifndef ANTIDOTE_BENCH_BENCHUTIL_H
#define ANTIDOTE_BENCH_BENCHUTIL_H

#include "antidote/Sweep.h"
#include "data/Registry.h"

#include <optional>
#include <string>

namespace antidote {
namespace benchutil {

/// Everything one figure bench needs.
struct FigureBenchSpec {
  std::string DatasetName;   ///< Registry name.
  std::string PaperFigure;   ///< e.g. "Figure 7".
  SweepConfig Scaled;        ///< Protocol parameters at BenchScale::Scaled.
  SweepConfig Full;          ///< Protocol parameters at BenchScale::Full.

  /// Qualitative expectations from the paper, echoed in the output so
  /// readers can eyeball the shape match (EXPERIMENTS.md records them).
  std::vector<std::string> PaperShapeNotes;
};

/// Protocol parameters matching the paper (1 h timeout; the memory cap
/// stands in for their 160 GB machine).
SweepConfig paperScaleConfig();

/// Scaled-down defaults used when ANTIDOTE_BENCH_SCALE != full.
SweepConfig scaledConfig();

/// Reads ANTIDOTE_JOBS: the sweep's verification worker threads ("0" =
/// one per hardware thread). Defaults to 1 (serial).
unsigned benchJobsFromEnv();

/// Reads ANTIDOTE_FRONTIER_JOBS: executors inside each instance's DTrace#
/// frontier ("0" = one per hardware thread). Defaults to 1 (serial).
unsigned benchFrontierJobsFromEnv();

/// Reads ANTIDOTE_SPLIT_JOBS: executors inside each bestSplit# candidate
/// scoring pass ("0" = one per hardware thread). Defaults to 1 (serial).
unsigned benchSplitJobsFromEnv();

/// Reads ANTIDOTE_CACHE_BYTES: when set, the figure bench attaches a
/// certificate cache with this byte budget ("0" = unbounded) to its
/// sweep and reports the hit/miss stats. Unset (the default) runs
/// cache-less — a single sweep's probes rarely repeat a query, so the
/// cache is plumbing to exercise, not a figure-bench speedup.
std::optional<uint64_t> benchCacheBytesFromEnv();

/// Runs the spec at the scale selected by the environment and prints the
/// figure panels. Returns the sweep result for further custom reporting.
SweepResult runFigureBench(const FigureBenchSpec &Spec);

/// Prints the Figure 6-style "fraction verified vs n" series (union over
/// the configured domains, as the paper's parallel-run setup does).
void printFractionVerifiedSeries(const std::string &DatasetName,
                                 const SweepResult &Result,
                                 const std::vector<unsigned> &Depths);

} // namespace benchutil
} // namespace antidote

#endif // ANTIDOTE_BENCH_BENCHUTIL_H
