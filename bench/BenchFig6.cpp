//===- bench/BenchFig6.cpp - Figure 6 reproduction -----------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates Figure 6: for each of the five benchmark datasets, the
// fraction of test inputs proven robust as a function of the poisoning
// parameter n (log-scaled in the paper), at tree depths 1-4, counting an
// instance as verified if *either* the box or the disjunctive domain
// proves it (the paper's parallel-domain setup).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "antidote/Report.h"

#include "support/Timer.h"

#include <cstdio>

using namespace antidote;
using namespace antidote::benchutil;

int main() {
  BenchScale Scale = benchScaleFromEnv();
  Timer Total;
  std::printf("=== Figure 6 reproduction: fraction verified vs poisoning n "
              "===\n");
  std::printf("scale: %s\n\n", Scale == BenchScale::Full ? "full" : "scaled");

  for (const std::string &Name : benchmarkDatasetNames()) {
    SweepConfig Config =
        Scale == BenchScale::Full ? paperScaleConfig() : scaledConfig();
    if (Scale != BenchScale::Full) {
      // Keep the whole five-dataset sweep within a few minutes: trim the
      // most expensive corner (MNIST-like with real features).
      if (Name == "mnist17-real") {
        Config.Depths = {1, 2};
        Config.InstanceLimits.TimeoutSeconds = 1.5;
      } else if (Name == "mnist17-binary") {
        Config.InstanceLimits.TimeoutSeconds = 0.75;
      }
    }
    BenchmarkDataset Bench = loadBenchmarkDataset(Name, Scale);
    std::printf("### %s (train %u, verifying %zu inputs) ###\n",
                Name.c_str(), Bench.Split.Train.numRows(),
                Bench.VerifyRows.size());
    SweepResult Result = runPoisoningSweep(
        Bench.Split.Train, Bench.Split.Test, Bench.VerifyRows, Config);
    printFractionVerifiedSeries(Name, Result, Config.Depths);
  }

  std::printf("paper-reported shape: every dataset verifies a sizable "
              "fraction at small n;\nthe fraction decays with n; depth 1 "
              "on iris is the outlier (footnote 10's\n50/50 leaf) where "
              "almost nothing verifies; MNIST variants sustain the\n"
              "largest absolute n before the cliff (hundreds of elements "
              "at paper scale).\n");
  std::printf("\ntotal bench time: %s\n", formatSeconds(Total.seconds())
                                              .c_str());
  return 0;
}
