//===- bench/BenchTable1.cpp - Table 1 reproduction ----------------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates the paper's Table 1: per-dataset sizes, feature/class
// structure, and DTrace test-set accuracy at tree depths 1-4. Paper values
// are printed alongside for comparison; dataset provenance differs (our
// synthetic equivalents, DESIGN.md §3), so the comparison is about bands,
// not digits.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "antidote/Report.h"
#include "concrete/DecisionTree.h"
#include "support/Timer.h"

#include <cstdio>

using namespace antidote;

namespace {

/// Table 1 rows as published.
struct PaperRow {
  const char *Name;
  const char *Features;
  const char *Classes;
  double Accuracy[4];
};

} // namespace

static const PaperRow PaperRows[] = {
    {"iris", "R^4", "3", {20.0, 90.0, 90.0, 90.0}},
    {"mammography", "R^5", "2", {80.7, 83.1, 81.9, 80.7}},
    {"wdbc", "R^30", "2", {91.2, 92.0, 92.9, 94.7}},
    {"mnist17-binary", "{0,1}^784", "2", {95.7, 97.4, 97.8, 98.3}},
    {"mnist17-real", "R^784", "2", {95.6, 97.6, 98.3, 98.7}},
};

int main() {
  BenchScale Scale = benchScaleFromEnv();
  std::printf("=== Table 1 reproduction: dataset metrics and DTrace "
              "test-set accuracies ===\n");
  std::printf("scale: %s\n\n", Scale == BenchScale::Full ? "full" : "scaled");

  TableWriter Table({"dataset", "train", "test", "features", "classes",
                     "d=1", "d=2", "d=3", "d=4", "paper d=1..4"});
  Timer Total;
  for (const PaperRow &Paper : PaperRows) {
    // Table 1 reports the datasets themselves; build MNIST at full size
    // even in scaled mode unless that proves too slow on the host —
    // tree learning is a one-time cost, unlike verification.
    BenchmarkDataset Bench = loadBenchmarkDataset(Paper.Name, Scale);
    const Dataset &Train = Bench.Split.Train;
    const Dataset &Test = Bench.Split.Test;
    SplitContext Ctx(Train);
    RowIndexList Rows = allRows(Train);
    std::string Accuracies[4];
    std::vector<std::string> Row = {
        Paper.Name, std::to_string(Train.numRows()),
        std::to_string(Test.numRows()), Paper.Features, Paper.Classes};
    for (unsigned Depth = 1; Depth <= 4; ++Depth) {
      DecisionTree Tree = DecisionTree::learn(Ctx, Rows, Depth);
      Row.push_back(formatPercent(testAccuracy(Tree, Test)));
    }
    char PaperCell[64];
    std::snprintf(PaperCell, sizeof(PaperCell), "%.1f/%.1f/%.1f/%.1f",
                  Paper.Accuracy[0], Paper.Accuracy[1], Paper.Accuracy[2],
                  Paper.Accuracy[3]);
    Row.push_back(PaperCell);
    Table.addRow(std::move(Row));
    (void)Accuracies;
  }
  Table.print();
  std::printf("\nnotes:\n");
  std::printf("  - datasets are synthetic stand-ins with the published "
              "shapes (DESIGN.md §3)\n");
  std::printf("  - the paper's iris depth-1 outlier (20%%) stems from its "
              "specific 80/20 split;\n    our generator reproduces the "
              "50/50-leaf *tie* (footnote 10) that drives the\n    "
              "depth-1 robustness behaviour, not that accuracy value\n");
  std::printf("total time: %s\n", formatSeconds(Total.seconds()).c_str());
  return 0;
}
