//===- bench/BenchMicro.cpp - Transformer micro-benchmarks ---------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// google-benchmark microbenchmarks for the building blocks whose costs
// drive the Figure 7-11 curves: interval arithmetic, ⟨T,n⟩ joins and
// restrictions, cprob#/ent#, concrete and abstract bestSplit, DTrace, and
// end-to-end verification queries.
//
//===----------------------------------------------------------------------===//

#include "abstract/AbstractBestSplit.h"
#include "antidote/Sweep.h"
#include "antidote/Verifier.h"
#include "data/Registry.h"
#include "serving/CertCache.h"
#include "serving/DiskCertStore.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

using namespace antidote;

namespace {

/// Shared lazily-constructed workloads (benchmark registration happens
/// before main, so construction must be deferred into the benchmarks).
const BenchmarkDataset &mammo() {
  static BenchmarkDataset Bench =
      loadBenchmarkDataset("mammography", BenchScale::Scaled);
  return Bench;
}

const SplitContext &mammoCtx() {
  static SplitContext Ctx(mammo().Split.Train);
  return Ctx;
}

const Verifier &mammoVerifier() {
  static Verifier V(mammo().Split.Train);
  return V;
}

} // namespace

static void BM_IntervalArithmetic(benchmark::State &State) {
  Interval A(0.25, 0.75);
  Interval B(0.1, 0.9);
  for (auto _ : State) {
    Interval C = A * B + (B - A);
    Interval D = C.join(A).meet(B);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_IntervalArithmetic);

static void BM_AbstractJoin(benchmark::State &State) {
  const Dataset &Train = mammo().Split.Train;
  RowIndexList Even, Odd;
  for (uint32_t Row = 0; Row < Train.numRows(); ++Row)
    (Row % 2 ? Odd : Even).push_back(Row);
  AbstractDataset A(Train, Even, 4);
  AbstractDataset B(Train, Odd, 2);
  for (auto _ : State) {
    AbstractDataset J = AbstractDataset::join(A, B);
    benchmark::DoNotOptimize(J.budget());
  }
}
BENCHMARK(BM_AbstractJoin);

static void BM_AbstractRestrict(benchmark::State &State) {
  const Dataset &Train = mammo().Split.Train;
  AbstractDataset A = AbstractDataset::entire(Train, 8);
  SplitPredicate Pred = SplitPredicate::symbolic(1, 50.0, 55.0);
  for (auto _ : State) {
    AbstractDataset R = A.restrict(Pred, true);
    benchmark::DoNotOptimize(R.size());
  }
}
BENCHMARK(BM_AbstractRestrict);

static void BM_CprobTransformer(benchmark::State &State) {
  CprobTransformerKind Kind =
      State.range(0) ? CprobTransformerKind::NaiveInterval
                     : CprobTransformerKind::Optimal;
  std::vector<uint32_t> Counts = {311, 353};
  for (auto _ : State) {
    std::vector<Interval> Probs =
        abstractClassProbabilities(Counts, 664, 16, Kind);
    benchmark::DoNotOptimize(Probs.data());
  }
}
BENCHMARK(BM_CprobTransformer)->Arg(0)->Arg(1);

// One abstractGiniImpurity call is ~10 ns — binary code layout alone
// moves that past any sane regression tolerance — so each iteration
// sweeps 256 distinct probability vectors and the gate compares the
// microsecond-scale aggregate (tools/bench_compare.py gates this name).
static void BM_AbstractGini(benchmark::State &State) {
  std::vector<std::vector<Interval>> Inputs;
  for (int I = 0; I < 256; ++I) {
    double Lo = (I % 16) / 16.0;
    double Hi = Lo + (1.0 - Lo) * (I / 16) / 16.0;
    Inputs.push_back({Interval(Lo, Hi), Interval(1.0 - Hi, 1.0 - Lo)});
  }
  for (auto _ : State) {
    double Acc = 0.0;
    for (const std::vector<Interval> &Probs : Inputs)
      Acc += abstractGiniImpurity(Probs).ub();
    benchmark::DoNotOptimize(Acc);
  }
  State.SetItemsProcessed(State.iterations() *
                          static_cast<int64_t>(Inputs.size()));
}
BENCHMARK(BM_AbstractGini);

static void BM_ConcreteBestSplit(benchmark::State &State) {
  RowIndexList Rows = allRows(mammo().Split.Train);
  for (auto _ : State) {
    std::optional<SplitPredicate> Best = bestSplit(mammoCtx(), Rows);
    benchmark::DoNotOptimize(Best);
  }
}
BENCHMARK(BM_ConcreteBestSplit);

static void BM_AbstractBestSplit(benchmark::State &State) {
  AbstractDataset A = AbstractDataset::entire(
      mammo().Split.Train, static_cast<uint32_t>(State.range(0)));
  for (auto _ : State) {
    PredicateSet Psi =
        *abstractBestSplit(mammoCtx(), A, CprobTransformerKind::Optimal);
    benchmark::DoNotOptimize(Psi.size());
  }
}
BENCHMARK(BM_AbstractBestSplit)->Arg(1)->Arg(8)->Arg(64);

//===----------------------------------------------------------------------===//
// SoA kernel benches: the branch-free column kernels in isolation.
//
// These three pin the hot loops the struct-of-arrays refactor vectorized:
// the dense candidate-scan split enumeration, the fused ent#-from-counts,
// and the compare-into-mask row filter. They are in the CI regression gate
// (BENCH_kernels.json); a >25% cpu_time slowdown fails the gate.
//===----------------------------------------------------------------------===//

// One full candidate enumeration pass over every feature: compaction of the
// sorted orders into dense (value, label) scratch plus the boundary scan.
static void BM_KernelSplitCandidateScan(benchmark::State &State) {
  RowIndexList Rows = allRows(mammo().Split.Train);
  SplitEnumerationPrepass Pre(mammoCtx(), Rows);
  std::vector<uint32_t> PosCounts(mammo().Split.Train.numClasses());
  for (auto _ : State) {
    size_t Candidates = 0;
    for (unsigned F = 0; F < mammo().Split.Train.numFeatures(); ++F)
      forEachFeatureCandidateSplit(
          Pre, F, PredicateMode::ConcreteMidpoint, PosCounts,
          [&](const SplitPredicate &, const std::vector<uint32_t> &,
              uint32_t) { ++Candidates; });
    benchmark::DoNotOptimize(Candidates);
  }
}
BENCHMARK(BM_KernelSplitCandidateScan);

// ent# straight from a flat count slice: Arg(0) = the fused branch-free
// kernel (Optimal x ExactTerm), Arg(1) = the retained naive reference
// composition cprob# |> ent# on the same counts. The ratio between the two
// is the fusion speedup, measurable inside one binary.
static void BM_KernelAbstractGiniCounts(benchmark::State &State) {
  std::vector<uint32_t> Counts = {311, 353, 127, 64};
  uint32_t Total = 855, Budget = 16;
  if (State.range(0) == 0) {
    for (auto _ : State) {
      Interval Ent = abstractGiniImpurityFromCounts(
          Counts, Total, Budget, CprobTransformerKind::Optimal,
          GiniLiftingKind::ExactTerm);
      benchmark::DoNotOptimize(Ent);
    }
  } else {
    for (auto _ : State) {
      Interval Ent = abstractGiniImpurity(
          abstractClassProbabilities(Counts, Total, Budget,
                                     CprobTransformerKind::Optimal),
          GiniLiftingKind::ExactTerm);
      benchmark::DoNotOptimize(Ent);
    }
  }
}
BENCHMARK(BM_KernelAbstractGiniCounts)->Arg(0)->Arg(1);

// The branch-free always-write/conditionally-advance row filter over one
// contiguous feature column (the concrete DTrace partition step).
static void BM_KernelFilterMask(benchmark::State &State) {
  const Dataset &Train = mammo().Split.Train;
  RowIndexList Rows = allRows(Train);
  SplitPredicate Pred = SplitPredicate::threshold(1, 52.0);
  for (auto _ : State) {
    RowIndexList Kept = filterRows(Train, Rows, Pred, true);
    benchmark::DoNotOptimize(Kept.size());
  }
}
BENCHMARK(BM_KernelFilterMask);

// Slice-wise interval join over SoA bound slices (support/Interval.h).
static void BM_KernelSliceJoin(benchmark::State &State) {
  const size_t N = 1024;
  std::vector<double> ALo(N), AHi(N), BLo(N), BHi(N), OutLo(N), OutHi(N);
  for (size_t I = 0; I < N; ++I) {
    ALo[I] = static_cast<double>(I % 17);
    AHi[I] = ALo[I] + 2.0;
    BLo[I] = static_cast<double>(I % 23) - 1.0;
    BHi[I] = BLo[I] + 3.0;
  }
  for (auto _ : State) {
    joinSlices(ALo.data(), AHi.data(), BLo.data(), BHi.data(), OutLo.data(),
               OutHi.data(), N);
    benchmark::DoNotOptimize(OutLo.data());
    benchmark::DoNotOptimize(OutHi.data());
  }
}
BENCHMARK(BM_KernelSliceJoin);

static void BM_ConcreteDTrace(benchmark::State &State) {
  RowIndexList Rows = allRows(mammo().Split.Train);
  const float *X = mammo().Split.Test.row(0);
  for (auto _ : State) {
    TraceResult Trace = runDTrace(mammoCtx(), Rows, X, 3);
    benchmark::DoNotOptimize(Trace.PredictedClass);
  }
}
BENCHMARK(BM_ConcreteDTrace);

static void BM_VerifyQuery(benchmark::State &State) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = State.range(0) ? AbstractDomainKind::Disjuncts
                                 : AbstractDomainKind::Box;
  Config.Limits.TimeoutSeconds = 5.0;
  const float *X = mammo().Split.Test.row(1);
  uint32_t Budget = static_cast<uint32_t>(State.range(1));
  for (auto _ : State) {
    Certificate Cert = mammoVerifier().verify(X, Budget, Config);
    benchmark::DoNotOptimize(Cert.Kind);
  }
}
BENCHMARK(BM_VerifyQuery)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 16})
    ->Args({1, 16});

// The label-flip threat model through the same unified frontier engine as
// removal (abstract/ThreatModel.h): the cost profile differs — flip keeps
// exact row sets, so restricts are concrete filters, but the forced-pure
// terminal check and the flip cprob# intervals run per disjunct. Gated by
// tools/bench_compare.py alongside BM_VerifyQuery so an engine-level
// change that only hurts one model is still caught. Disjuncts only: the
// flip transformer is unsound under box joins.
static void BM_FlipVerify(benchmark::State &State) {
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Threat = ThreatModelKind::LabelFlip;
  Config.Limits.TimeoutSeconds = 5.0;
  const float *X = mammo().Split.Test.row(1);
  uint32_t Budget = static_cast<uint32_t>(State.range(0));
  for (auto _ : State) {
    Certificate Cert = mammoVerifier().verify(X, Budget, Config);
    benchmark::DoNotOptimize(Cert.Kind);
  }
}
BENCHMARK(BM_FlipVerify)->Arg(2)->Arg(16);

// Serial-vs-parallel scaling of the §6.1 sweep: the same synthetic
// workload at Jobs = 1/2/4. Aggregates are identical across thread counts
// (tests/ParallelSweepTests.cpp enforces this); only wall clock should
// move. Real time is what matters for a multithreaded region, hence
// UseRealTime. On a single-core machine expect ~1x.
static void BM_PoisoningSweepJobs(benchmark::State &State) {
  const BenchmarkDataset &Bench = mammo();
  SweepConfig Config;
  Config.Depths = {1, 2};
  Config.InstanceLimits.TimeoutSeconds = 5.0;
  Config.MaxPoisoning = 64;
  Config.Jobs = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    SweepResult Result = runPoisoningSweep(
        Bench.Split.Train, Bench.Split.Test, Bench.VerifyRows, Config);
    benchmark::DoNotOptimize(Result.Series.data());
  }
}
BENCHMARK(BM_PoisoningSweepJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Frontier-parallel scaling of a single hard query: one deep Disjuncts
// verification whose per-depth frontiers are large enough to fan out, at
// FrontierJobs = 1/2/4. The certificate (and every counter in it) is
// identical across thread counts (tests/FrontierParallelTests.cpp
// enforces this); only real time should move, and only on multi-core
// machines — hence UseRealTime, and expect ~1x on a single core.
static void BM_VerifyFrontierJobs(benchmark::State &State) {
  VerifierConfig Config;
  Config.Depth = 3;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 30.0;
  Config.FrontierJobs = static_cast<unsigned>(State.range(0));
  std::unique_ptr<ThreadPool> Pool =
      makeVerificationPool(Config.FrontierJobs);
  Config.FrontierPool = Pool.get();
  const float *X = mammo().Split.Test.row(1);
  for (auto _ : State) {
    Certificate Cert = mammoVerifier().verify(X, /*PoisoningBudget=*/16,
                                              Config);
    benchmark::DoNotOptimize(Cert.Kind);
  }
}
BENCHMARK(BM_VerifyFrontierJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Per-feature sharding of one bestSplit# candidate-scoring pass, at
// SplitJobs = 1/2/4 — the axis that helps when a single disjunct
// dominates and the frontier fan-out has nothing to spread. The returned
// PredicateSet is bit-identical across values
// (tests/BestSplitShardTests.cpp enforces this); only real time should
// move, with the same single-core caveat as the other scaling benches.
static void BM_BestSplitJobs(benchmark::State &State) {
  unsigned SplitJobs = static_cast<unsigned>(State.range(0));
  std::unique_ptr<ThreadPool> Pool = makeVerificationPool(SplitJobs);
  AbstractDataset A = AbstractDataset::entire(mammo().Split.Train, 16);
  for (auto _ : State) {
    std::optional<PredicateSet> Psi = abstractBestSplit(
        mammoCtx(), A, CprobTransformerKind::Optimal,
        GiniLiftingKind::ExactTerm, /*Meter=*/nullptr, Pool.get(),
        SplitJobs);
    benchmark::DoNotOptimize(Psi->size());
  }
}
BENCHMARK(BM_BestSplitJobs)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime();

// The serving layer's value proposition: most serving traffic repeats
// queries, and a warm fingerprint-keyed cache short-circuits a repeat to
// one hash probe. Arg(0) re-verifies a fixed batch of queries from
// scratch every iteration (a cache-less server); Arg(1) runs the same
// batch against a cache warmed by a single seeding pass, so every timed
// query is a hit. The speedup is hash-probe vs full verification and
// therefore shows on any machine, single-core containers included —
// unlike the Jobs scaling benches, no second core is needed. Cached
// certificates are byte-identical to the seeding run's
// (tests/CertCacheTests.cpp enforces it); the `hit_rate` counter
// reports the timed passes' hit fraction (1.0 once warm).
static void BM_CacheHitRate(benchmark::State &State) {
  bool Warm = State.range(0);
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 5.0;
  const BenchmarkDataset &Bench = mammo();
  std::vector<const float *> Inputs;
  for (size_t I = 0; I < 8 && I < Bench.VerifyRows.size(); ++I)
    Inputs.push_back(Bench.Split.Test.row(Bench.VerifyRows[I]));

  CertCache Cache(/*MaxBytes=*/0);
  uint64_t HitsBefore = 0;
  if (Warm) {
    Config.Cache = &Cache;
    // Seeding pass: misses verify and populate; everything after hits.
    mammoVerifier().verifyBatch(Inputs, /*PoisoningBudget=*/8, Config);
    HitsBefore = Cache.stats().Hits;
  }
  uint64_t Served = 0;
  for (auto _ : State) {
    std::vector<Certificate> Certs =
        mammoVerifier().verifyBatch(Inputs, /*PoisoningBudget=*/8, Config);
    benchmark::DoNotOptimize(Certs.data());
    Served += Certs.size();
  }
  State.counters["hit_rate"] =
      Served ? static_cast<double>(Cache.stats().Hits - HitsBefore) /
                   static_cast<double>(Served)
             : 0.0;
}
BENCHMARK(BM_CacheHitRate)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// The persistence tier's value proposition: certificates outlive the
// process, so a *restarted* server answers yesterday's queries from
// disk instead of re-verifying them. Arg(0) is the restarted cold
// process with no store (re-verifies the batch); Arg(1) simulates a
// cold-process/warm-disk restart every iteration — open a fresh
// `DiskCertStore` on a directory a one-time seeding pass populated
// (paying the full index rebuild), then serve the batch from disk.
// Like BM_CacheHitRate this needs no second core: the speedup is
// (open + pread + checksum) vs full verification. The `disk_hit_rate`
// counter is the correctness signal (1.0 once warm; certificates are
// byte-identical to the seeding run's —
// tests/DiskCertStoreTests.cpp enforces it).
static void BM_DiskStoreHitRate(benchmark::State &State) {
  bool Warm = State.range(0);
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 5.0;
  const BenchmarkDataset &Bench = mammo();
  std::vector<const float *> Inputs;
  for (size_t I = 0; I < 8 && I < Bench.VerifyRows.size(); ++I)
    Inputs.push_back(Bench.Split.Test.row(Bench.VerifyRows[I]));

  // One warm store directory per process, seeded once.
  static const std::string StoreDir = [] {
    char Template[] = "/tmp/antidote-bench-store-XXXXXX";
    const char *Dir = mkdtemp(Template);
    return std::string(Dir ? Dir : "/tmp/antidote-bench-store");
  }();
  if (Warm) {
    DiskCertStore::OpenResult Seeded = DiskCertStore::open(StoreDir);
    if (!Seeded.ok()) {
      State.SkipWithError(Seeded.Error.c_str());
      return;
    }
    if (Seeded.Store->stats().LiveRecords < Inputs.size()) {
      VerifierConfig SeedConfig = Config;
      SeedConfig.Cache = Seeded.Store.get();
      mammoVerifier().verifyBatch(Inputs, /*PoisoningBudget=*/8,
                                  SeedConfig);
    }
  }
  uint64_t Served = 0, DiskHits = 0;
  for (auto _ : State) {
    std::unique_ptr<DiskCertStore> Restarted;
    if (Warm) {
      // The restart: a fresh process would rebuild the index from the
      // segments exactly like this.
      DiskCertStore::OpenResult Opened = DiskCertStore::open(StoreDir);
      if (!Opened.ok()) {
        State.SkipWithError(Opened.Error.c_str());
        return;
      }
      Restarted = std::move(Opened.Store);
      Config.Cache = Restarted.get();
    }
    std::vector<Certificate> Certs =
        mammoVerifier().verifyBatch(Inputs, /*PoisoningBudget=*/8, Config);
    benchmark::DoNotOptimize(Certs.data());
    Served += Certs.size();
    if (Restarted)
      DiskHits += Restarted->stats().Hits;
  }
  State.counters["disk_hit_rate"] =
      Served ? static_cast<double>(DiskHits) / static_cast<double>(Served)
             : 0.0;
}
BENCHMARK(BM_DiskStoreHitRate)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

// The delta-tolerant serving path's value proposition: after a small
// training-set edit, queries are answered from the *parent* dataset's
// stored certificates (two hash probes, via the removal-slack rule of
// data/Fingerprint.h) instead of re-verified from scratch. Arg(0)
// re-verifies a fixed batch against the edited dataset every iteration
// (what a delta-blind server must do after any edit invalidates its
// fingerprint); Arg(1) serves the same batch through the slack rule
// from a cache the parent seeded at radius n + 1. Only queries the
// parent proves Robust at the slack radius participate (slack never
// serves Unknown), so the `delta_hit_rate` counter — the fraction of
// served answers carrying a parent radius wider than the queried
// budget — is 1.0 once warm, and the speedup shows single-core.
static void BM_DeltaHitRate(benchmark::State &State) {
  bool Warm = State.range(0);
  VerifierConfig Config;
  Config.Depth = 2;
  Config.Domain = AbstractDomainKind::Disjuncts;
  Config.Limits.TimeoutSeconds = 5.0;
  const BenchmarkDataset &Bench = mammo();

  // The edited dataset: the parent minus its first training row.
  Dataset Child = Bench.Split.Train;
  Child.markLineage();
  Child.removeRow(0);
  Verifier ChildVerifier(Child);

  CertCache Cache(/*MaxBytes=*/0);
  std::vector<const float *> Inputs;
  {
    // Seed the parent's entries at the slack radius 1 + 1 and keep the
    // queries it proves Robust there — the ones the slack rule serves.
    VerifierConfig SeedConfig = Config;
    SeedConfig.Cache = &Cache;
    for (size_t I = 0; I < 8 && I < Bench.VerifyRows.size(); ++I) {
      const float *X = Bench.Split.Test.row(Bench.VerifyRows[I]);
      if (mammoVerifier().verify(X, /*PoisoningBudget=*/2, SeedConfig)
              .Kind == VerdictKind::Robust)
        Inputs.push_back(X);
    }
  }
  if (Warm) {
    Config.Cache = &Cache;
    ChildVerifier.setLineage(
        lineageSinceMark(mammoVerifier().fingerprint(), Child));
  }
  uint64_t Served = 0, SlackServed = 0;
  for (auto _ : State) {
    std::vector<Certificate> Certs =
        ChildVerifier.verifyBatch(Inputs, /*PoisoningBudget=*/1, Config);
    benchmark::DoNotOptimize(Certs.data());
    for (const Certificate &Cert : Certs)
      SlackServed += Cert.CertifiedRadius > Cert.PoisoningBudget;
    Served += Certs.size();
  }
  State.counters["delta_hit_rate"] =
      Served ? static_cast<double>(SlackServed) / static_cast<double>(Served)
             : 0.0;
}
BENCHMARK(BM_DeltaHitRate)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
