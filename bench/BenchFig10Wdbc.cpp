//===- bench/BenchFig10Wdbc.cpp - Figure 10 reproduction -----------------------===//
//
// Part of the Antidote reproduction of "Proving Data-Poisoning Robustness
// in Decision Trees" (Drews, Albarghouthi, D'Antoni; PLDI 2020).
//
// Regenerates Figure 10: efficacy / performance / memory on the
// WDBC-like dataset (30 real-valued features — the mid-scale benchmark).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

using namespace antidote;
using namespace antidote::benchutil;

int main() {
  FigureBenchSpec Spec;
  Spec.DatasetName = "wdbc";
  Spec.PaperFigure = "Figure 10";
  Spec.Full = paperScaleConfig();
  Spec.Scaled = scaledConfig();
  Spec.Scaled.InstanceLimits.TimeoutSeconds = 2.0;
  Spec.PaperShapeNotes = {
      "Robustness provable out to n in the tens at depths >= 2",
      "30 real features make bestSplit# markedly more expensive than on "
      "mammography (avg ~26 s at depth 3 / 0.5% poisoning in the paper, "
      "vs 0.2 s there)",
      "Disjuncts memory grows steeply with n; Box stays flat but proves "
      "less",
  };
  runFigureBench(Spec);
  return 0;
}
